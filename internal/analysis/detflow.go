package analysis

import (
	"go/ast"
	"go/token"
	"go/types"
)

// DetFlow is the flow-sensitive successor to detorder: instead of
// judging each map-range body in isolation, it tracks map-iteration
// order as a taint through the function's CFG and reports only when
// tainted data actually reaches output — a return value, a channel
// send, or a formatting/encoding/IO call — without passing a sort
// barrier first.
//
// Sources: the key/value variables of a range over a map (or over an
// already-tainted sequence), and maps.Keys/maps.Values results.
// Propagation: assignments and appends whose right-hand side mentions
// a tainted value taint their targets; commutative numeric
// accumulation (`n += v`, counters) and comparisons stay clean, since
// their results are order-independent. Barriers: passing the value to
// a sort or slices ordering call kills its taint (and a clean
// reassignment kills it too — strong updates).
//
// The flow-sensitivity matters for the case detorder structurally
// cannot see: a slice sorted once and then appended to from a second
// map range is ordered garbage again, but detorder's collect-then-sort
// whitelist accepts it because *a* sort call exists in the function.
// detflow tracks the re-taint and reports at the sink.
var DetFlow = &Analyzer{
	Name: "detflow",
	Doc:  "flags map-iteration order flowing to output without a sort barrier",
	Run:  runDetFlow,
}

func runDetFlow(pass *Pass) {
	for _, file := range pass.Pkg.Files {
		ast.Inspect(file, func(n ast.Node) bool {
			switch d := n.(type) {
			case *ast.FuncDecl:
				if d.Body != nil {
					detflowFunc(pass, d.Body)
				}
			case *ast.FuncLit:
				detflowFunc(pass, d.Body)
			}
			return true
		})
	}
}

func detflowFunc(pass *Pass, body *ast.BlockStmt) {
	d := &detflowState{pass: pass, pkg: pass.Pkg}
	c := buildCFG(body)
	forwardFlow(c, flowFact{}, d.transfer)
}

type detflowState struct {
	pass *Pass
	pkg  *Package
}

// transfer interprets one block: range headers introduce taint,
// assignments propagate or kill it, sinks report it.
func (d *detflowState) transfer(b *cfgBlock, in flowFact, report bool) flowFact {
	for _, n := range b.nodes {
		switch node := n.(type) {
		case *ast.RangeStmt:
			d.rangeHeader(in, node)
		case *ast.AssignStmt:
			d.assign(in, node)
		case *ast.ReturnStmt:
			if report {
				for _, res := range node.Results {
					if src := d.exprTaint(in, res); src != token.NoPos {
						d.pass.Reportf(node.Return, "returns a value ordered by map iteration (tainted at line %d) without a sort barrier",
							d.pkg.Fset.Position(src).Line)
					}
				}
			}
		case *ast.SendStmt:
			if report {
				if src := d.exprTaint(in, node.Value); src != token.NoPos {
					d.pass.Reportf(node.Arrow, "sends a value ordered by map iteration (tainted at line %d) without a sort barrier",
						d.pkg.Fset.Position(src).Line)
				}
			}
		case *ast.ExprStmt:
			d.callEffects(in, node.X, report)
		case *ast.DeferStmt:
			d.callEffects(in, node.Call, report)
		case *ast.GoStmt:
			d.callEffects(in, node.Call, report)
		case *ast.DeclStmt:
			if gd, ok := node.Decl.(*ast.GenDecl); ok {
				for _, spec := range gd.Specs {
					if vs, ok := spec.(*ast.ValueSpec); ok {
						for i, name := range vs.Names {
							if i < len(vs.Values) {
								d.define(in, name, vs.Values[i])
							}
						}
					}
				}
			}
		case ast.Expr:
			// Conditions and switch tags: comparisons, order-clean.
		}
	}
	return in
}

// rangeHeader taints the iteration variables when X is a map or an
// already-tainted sequence.
func (d *detflowState) rangeHeader(in flowFact, rs *ast.RangeStmt) {
	var src token.Pos
	if tv, ok := d.pkg.Info.Types[rs.X]; ok && isMap(tv.Type) {
		src = rs.For
	} else if s := d.exprTaint(in, rs.X); s != token.NoPos {
		src = s
	} else {
		return
	}
	for _, expr := range []ast.Expr{rs.Key, rs.Value} {
		if expr == nil {
			continue
		}
		if id, ok := ast.Unparen(expr).(*ast.Ident); ok && id.Name != "_" {
			if obj := identObj(d.pkg, id); obj != nil {
				delete(in, obj)
				in.mark(obj, src)
			}
		}
	}
}

// assign propagates taint through one assignment.
func (d *detflowState) assign(in flowFact, s *ast.AssignStmt) {
	// Sort barriers can appear as expressions anywhere; handle calls in
	// the RHS first so `x = slices.Sorted(...)` comes out clean.
	for _, rhs := range s.Rhs {
		d.killSortArgs(in, rhs)
	}

	switch s.Tok {
	case token.ASSIGN, token.DEFINE:
		for i, lhs := range s.Lhs {
			var rhs ast.Expr
			if len(s.Rhs) == len(s.Lhs) {
				rhs = s.Rhs[i]
			} else if len(s.Rhs) == 1 {
				rhs = s.Rhs[0]
			}
			d.assignOne(in, lhs, rhs)
		}
	default:
		// Compound assignment: numeric accumulation commutes (sums,
		// counters, bit sets) and stays clean; anything else — string
		// concatenation most of all — is order-carrying.
		if len(s.Lhs) != 1 || len(s.Rhs) != 1 {
			return
		}
		obj := identObj(d.pkg, s.Lhs[0])
		if obj == nil {
			return
		}
		if tv, ok := d.pkg.Info.Types[s.Lhs[0]]; ok && isNumeric(tv.Type) {
			return
		}
		if src := d.exprTaint(in, s.Rhs[0]); src != token.NoPos {
			delete(in, obj)
			in.mark(obj, src)
		}
	}
}

// assignOne applies one target←value pair with strong update.
func (d *detflowState) assignOne(in flowFact, lhs, rhs ast.Expr) {
	id, ok := ast.Unparen(lhs).(*ast.Ident)
	if !ok || id.Name == "_" {
		return // writes through fields/indexes don't re-order the base
	}
	obj := identObj(d.pkg, id)
	if obj == nil {
		return
	}
	delete(in, obj)
	if rhs == nil {
		return
	}
	if src := d.exprTaint(in, rhs); src != token.NoPos {
		in.mark(obj, src)
	}
}

// define handles `var x = v` declarations.
func (d *detflowState) define(in flowFact, name *ast.Ident, value ast.Expr) {
	obj := d.pkg.Info.Defs[name]
	if obj == nil {
		return
	}
	delete(in, obj)
	if src := d.exprTaint(in, value); src != token.NoPos {
		in.mark(obj, src)
	}
}

// callEffects handles a call executed as a statement: sort barriers
// kill their arguments' taint; output sinks report tainted arguments.
func (d *detflowState) callEffects(in flowFact, e ast.Expr, report bool) {
	call, ok := ast.Unparen(e).(*ast.CallExpr)
	if !ok {
		return
	}
	if d.isSortCall(call) {
		d.killSortArgs(in, call)
		return
	}
	if report && d.isOutputCall(call) {
		for _, arg := range call.Args {
			if src := d.exprTaint(in, arg); src != token.NoPos {
				d.pass.Reportf(call.Pos(), "map-iteration order (tainted at line %d) reaches output without a sort barrier",
					d.pkg.Fset.Position(src).Line)
				return
			}
		}
	}
}

// killSortArgs clears the taint of every object mentioned in the
// arguments of sort/slices calls found inside e.
func (d *detflowState) killSortArgs(in flowFact, e ast.Expr) {
	ast.Inspect(e, func(n ast.Node) bool {
		if _, ok := n.(*ast.FuncLit); ok {
			return false
		}
		call, ok := n.(*ast.CallExpr)
		if !ok || !d.isSortCall(call) {
			return true
		}
		for _, arg := range call.Args {
			var objs []types.Object
			ast.Inspect(arg, func(x ast.Node) bool {
				if id, isIdent := x.(*ast.Ident); isIdent {
					if obj := d.pkg.Info.Uses[id]; obj != nil {
						objs = append(objs, obj)
					}
				}
				return true
			})
			for _, obj := range objs {
				delete(in, obj)
			}
		}
		return true
	})
}

// isSortCall reports whether the call is a sort or slices ordering
// function — the recognized sort barriers.
func (d *detflowState) isSortCall(call *ast.CallExpr) bool {
	fn := calleeFunc(d.pkg, call)
	if fn == nil {
		return false
	}
	switch funcPkgPath(fn) {
	case "sort", "slices":
		return true
	}
	return false
}

// isOutputCall recognizes sinks where ordering becomes observable:
// formatting, encoding, IO and logging calls.
func (d *detflowState) isOutputCall(call *ast.CallExpr) bool {
	fn := calleeFunc(d.pkg, call)
	if fn == nil {
		return false
	}
	switch funcPkgPath(fn) {
	case "fmt", "encoding/json", "encoding/csv", "io", "os", "log", "bufio", "bytes", "strings":
		// bytes/strings builders and writers included: they are the
		// staging buffers diagnostics get assembled in.
		switch fn.Name() {
		case "Contains", "Compare", "Equal", "HasPrefix", "HasSuffix", "Index", "Count":
			return false // order-insensitive predicates
		}
		return true
	}
	return false
}

// exprTaint evaluates an expression's taint: the position of the map
// range responsible, or NoPos when clean.
func (d *detflowState) exprTaint(in flowFact, e ast.Expr) token.Pos {
	if e == nil {
		return token.NoPos
	}
	switch x := ast.Unparen(e).(type) {
	case *ast.Ident:
		if obj := identObj(d.pkg, x); obj != nil {
			if ps := in[obj]; len(ps) > 0 {
				return ps.minPos()
			}
		}
		return token.NoPos
	case *ast.BinaryExpr:
		switch x.Op {
		case token.EQL, token.NEQ, token.LSS, token.LEQ, token.GTR, token.GEQ,
			token.LAND, token.LOR:
			return token.NoPos // boolean results carry no ordering
		}
		if p := d.exprTaint(in, x.X); p != token.NoPos {
			return p
		}
		return d.exprTaint(in, x.Y)
	case *ast.UnaryExpr:
		return d.exprTaint(in, x.X)
	case *ast.StarExpr:
		return d.exprTaint(in, x.X)
	case *ast.IndexExpr:
		if p := d.exprTaint(in, x.X); p != token.NoPos {
			return p
		}
		return d.exprTaint(in, x.Index)
	case *ast.SliceExpr:
		return d.exprTaint(in, x.X)
	case *ast.SelectorExpr:
		return d.exprTaint(in, x.X)
	case *ast.CompositeLit:
		for _, elt := range x.Elts {
			v := elt
			if kv, ok := elt.(*ast.KeyValueExpr); ok {
				v = kv.Value
			}
			if p := d.exprTaint(in, v); p != token.NoPos {
				return p
			}
		}
		return token.NoPos
	case *ast.CallExpr:
		return d.callTaint(in, x)
	case *ast.TypeAssertExpr:
		return d.exprTaint(in, x.X)
	case *ast.KeyValueExpr:
		return d.exprTaint(in, x.Value)
	default:
		return token.NoPos
	}
}

// callTaint evaluates a call expression's result taint.
func (d *detflowState) callTaint(in flowFact, call *ast.CallExpr) token.Pos {
	if d.isSortCall(call) {
		return token.NoPos // sorted results are clean by definition
	}
	if fn := calleeFunc(d.pkg, call); fn != nil {
		if funcPkgPath(fn) == "maps" && (fn.Name() == "Keys" || fn.Name() == "Values") {
			return call.Pos() // iterator over a map: a source in itself
		}
	}
	// Builtins whose results are order-independent.
	if id, ok := ast.Unparen(call.Fun).(*ast.Ident); ok {
		if b, isB := d.pkg.Info.Uses[id].(*types.Builtin); isB {
			switch b.Name() {
			case "len", "cap", "make", "new", "min", "max", "delete", "clear":
				return token.NoPos
			}
		}
	}
	// Anything else: a tainted argument taints the result (append,
	// strings.Join, conversions through helper functions, ...).
	for _, arg := range call.Args {
		if p := d.exprTaint(in, arg); p != token.NoPos {
			return p
		}
	}
	return token.NoPos
}
