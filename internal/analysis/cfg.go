package analysis

import (
	"go/ast"
	"go/token"
)

// This file builds per-function control-flow graphs over go/ast, the
// substrate the flow-sensitive analyzers (errflow, detflow, leakcheck)
// run on. Blocks hold "simple" nodes only — assignments, expression
// statements, conditions, range headers — while compound statements
// (if/for/switch/select) are decomposed into edges, so a forward
// dataflow pass can walk each block's nodes in order and follow
// successor edges for everything else.
//
// The builder is deliberately conservative where Go's control flow gets
// exotic: goto edges go straight to the exit block (no analyzer here
// reasons across a goto), and panics terminate the block like a return.

// A cfgBlock is one basic block: nodes executed in order, then a jump
// to one of the successors.
type cfgBlock struct {
	// index orders blocks by creation, which follows source order
	// closely enough for deterministic iteration.
	index int
	// nodes are the block's statements and decomposed expressions
	// (conditions, range headers), in execution order.
	nodes []ast.Node
	// succs are the possible next blocks.
	succs []*cfgBlock
}

// A cfg is one function body's control-flow graph.
type cfg struct {
	// entry is where execution starts; exit is the single synthetic
	// block every return (and the body's end) feeds.
	entry, exit *cfgBlock
	// blocks lists every block, entry first, exit last.
	blocks []*cfgBlock
}

// preds returns the predecessor lists of every block.
func (c *cfg) preds() map[*cfgBlock][]*cfgBlock {
	out := make(map[*cfgBlock][]*cfgBlock, len(c.blocks))
	for _, b := range c.blocks {
		for _, s := range b.succs {
			out[s] = append(out[s], b)
		}
	}
	return out
}

// reversePostorder returns the blocks in reverse postorder from the
// entry — the iteration order forward dataflow converges fastest in —
// followed by any unreachable blocks in index order.
func (c *cfg) reversePostorder() []*cfgBlock {
	seen := make(map[*cfgBlock]bool, len(c.blocks))
	var post []*cfgBlock
	var dfs func(b *cfgBlock)
	dfs = func(b *cfgBlock) {
		if seen[b] {
			return
		}
		seen[b] = true
		for _, s := range b.succs {
			dfs(s)
		}
		post = append(post, b)
	}
	dfs(c.entry)
	order := make([]*cfgBlock, 0, len(c.blocks))
	for i := len(post) - 1; i >= 0; i-- {
		order = append(order, post[i])
	}
	for _, b := range c.blocks {
		if !seen[b] {
			order = append(order, b)
		}
	}
	return order
}

// cycleBlocks returns the set of blocks that sit on a cycle, tagged
// with whether their cycle has any edge escaping it. A "closed" cycle —
// one no edge ever leaves — is a loop only a blocking operation inside
// it can end, which is what leakcheck needs to know.
func (c *cfg) cycleBlocks() (onCycle map[*cfgBlock]bool, closed map[*cfgBlock]bool) {
	// Tarjan's strongly connected components, iteratively small: the
	// graphs here are function bodies, recursion depth is fine.
	index := make(map[*cfgBlock]int)
	low := make(map[*cfgBlock]int)
	onStack := make(map[*cfgBlock]bool)
	var stack []*cfgBlock
	next := 0
	onCycle = make(map[*cfgBlock]bool)
	closed = make(map[*cfgBlock]bool)

	var strong func(b *cfgBlock)
	strong = func(b *cfgBlock) {
		index[b] = next
		low[b] = next
		next++
		stack = append(stack, b)
		onStack[b] = true
		for _, s := range b.succs {
			if _, ok := index[s]; !ok {
				strong(s)
				if low[s] < low[b] {
					low[b] = low[s]
				}
			} else if onStack[s] && index[s] < low[b] {
				low[b] = index[s]
			}
		}
		if low[b] != index[b] {
			return
		}
		var scc []*cfgBlock
		for {
			top := stack[len(stack)-1]
			stack = stack[:len(stack)-1]
			onStack[top] = false
			scc = append(scc, top)
			if top == b {
				break
			}
		}
		cyclic := len(scc) > 1
		if !cyclic {
			for _, s := range scc[0].succs {
				if s == scc[0] {
					cyclic = true
				}
			}
		}
		if !cyclic {
			return
		}
		inSCC := make(map[*cfgBlock]bool, len(scc))
		for _, m := range scc {
			inSCC[m] = true
		}
		escapes := false
		for _, m := range scc {
			for _, s := range m.succs {
				if !inSCC[s] {
					escapes = true
				}
			}
		}
		for _, m := range scc {
			onCycle[m] = true
			if !escapes {
				closed[m] = true
			}
		}
	}
	strong(c.entry)
	return onCycle, closed
}

// buildCFG constructs the control-flow graph of one function body.
func buildCFG(body *ast.BlockStmt) *cfg {
	b := &cfgBuilder{c: &cfg{}}
	b.c.entry = b.newBlock()
	b.c.exit = &cfgBlock{index: -1}
	b.cur = b.c.entry
	b.stmt(body)
	if b.cur != nil {
		b.edge(b.cur, b.c.exit)
	}
	b.c.exit.index = len(b.c.blocks)
	b.c.blocks = append(b.c.blocks, b.c.exit)
	return b.c
}

// loopFrame is one enclosing breakable construct: loops carry both
// targets, switches and selects only a break target.
type loopFrame struct {
	label     string
	brk, cont *cfgBlock
}

type cfgBuilder struct {
	c *cfg
	// cur is the block statements currently append to; nil after a
	// terminating statement (return/break/continue), in which case the
	// next statement opens a fresh unreachable block.
	cur *cfgBlock
	// frames stacks the enclosing breakable constructs.
	frames []loopFrame
	// pendingLabel is the label of a LabeledStmt waiting to attach to
	// the loop or switch it labels.
	pendingLabel string
}

func (b *cfgBuilder) newBlock() *cfgBlock {
	blk := &cfgBlock{index: len(b.c.blocks)}
	b.c.blocks = append(b.c.blocks, blk)
	return blk
}

func (b *cfgBuilder) edge(from, to *cfgBlock) {
	from.succs = append(from.succs, to)
}

func (b *cfgBuilder) add(n ast.Node) {
	b.cur.nodes = append(b.cur.nodes, n)
}

// ensure opens a fresh block for statements that follow a terminator —
// unreachable code still gets blocks (with no predecessors), so every
// node appears in exactly one block.
func (b *cfgBuilder) ensure() {
	if b.cur == nil {
		b.cur = b.newBlock()
	}
}

// takeLabel consumes the pending label for the construct now starting.
func (b *cfgBuilder) takeLabel() string {
	l := b.pendingLabel
	b.pendingLabel = ""
	return l
}

// frameFor finds the break/continue target frame, innermost first.
func (b *cfgBuilder) frameFor(label string, needCont bool) *loopFrame {
	for i := len(b.frames) - 1; i >= 0; i-- {
		f := &b.frames[i]
		if needCont && f.cont == nil {
			continue
		}
		if label == "" || f.label == label {
			return f
		}
	}
	return nil
}

func (b *cfgBuilder) stmt(s ast.Stmt) {
	b.ensure()
	switch s := s.(type) {
	case *ast.BlockStmt:
		for _, st := range s.List {
			b.stmt(st)
		}

	case *ast.IfStmt:
		if s.Init != nil {
			b.stmt(s.Init)
			b.ensure()
		}
		b.add(s.Cond)
		cond := b.cur
		after := b.newBlock()

		then := b.newBlock()
		b.edge(cond, then)
		b.cur = then
		b.stmt(s.Body)
		if b.cur != nil {
			b.edge(b.cur, after)
		}

		if s.Else != nil {
			els := b.newBlock()
			b.edge(cond, els)
			b.cur = els
			b.stmt(s.Else)
			if b.cur != nil {
				b.edge(b.cur, after)
			}
		} else {
			b.edge(cond, after)
		}
		b.cur = after

	case *ast.ForStmt:
		label := b.takeLabel()
		if s.Init != nil {
			b.stmt(s.Init)
			b.ensure()
		}
		header := b.newBlock()
		b.edge(b.cur, header)
		after := b.newBlock()
		contTo := header
		var post *cfgBlock
		if s.Post != nil {
			post = b.newBlock()
			post.nodes = append(post.nodes, s.Post)
			b.edge(post, header)
			contTo = post
		}
		if s.Cond != nil {
			header.nodes = append(header.nodes, s.Cond)
			b.edge(header, after)
		}
		body := b.newBlock()
		b.edge(header, body)
		b.frames = append(b.frames, loopFrame{label: label, brk: after, cont: contTo})
		b.cur = body
		b.stmt(s.Body)
		if b.cur != nil {
			b.edge(b.cur, contTo)
		}
		b.frames = b.frames[:len(b.frames)-1]
		b.cur = after

	case *ast.RangeStmt:
		label := b.takeLabel()
		// The RangeStmt node itself sits in the header: analyzers read
		// s.X and the key/value definitions off it, once per iteration.
		header := b.newBlock()
		b.edge(b.cur, header)
		header.nodes = append(header.nodes, s)
		after := b.newBlock()
		b.edge(header, after)
		body := b.newBlock()
		b.edge(header, body)
		b.frames = append(b.frames, loopFrame{label: label, brk: after, cont: header})
		b.cur = body
		b.stmt(s.Body)
		if b.cur != nil {
			b.edge(b.cur, header)
		}
		b.frames = b.frames[:len(b.frames)-1]
		b.cur = after

	case *ast.SwitchStmt, *ast.TypeSwitchStmt:
		label := b.takeLabel()
		var init ast.Stmt
		var tag ast.Node
		var clauses []ast.Stmt
		switch sw := s.(type) {
		case *ast.SwitchStmt:
			init, tag, clauses = sw.Init, sw.Tag, sw.Body.List
		case *ast.TypeSwitchStmt:
			init, tag, clauses = sw.Init, sw.Assign, sw.Body.List
		}
		if init != nil {
			b.stmt(init)
			b.ensure()
		}
		if tag != nil {
			b.add(tag)
		}
		swBlk := b.cur
		after := b.newBlock()
		b.frames = append(b.frames, loopFrame{label: label, brk: after})

		// Two passes so fallthrough can edge into the next clause block.
		blks := make([]*cfgBlock, len(clauses))
		hasDefault := false
		for i, cl := range clauses {
			blks[i] = b.newBlock()
			b.edge(swBlk, blks[i])
			if cc, ok := cl.(*ast.CaseClause); ok && cc.List == nil {
				hasDefault = true
			}
		}
		for i, cl := range clauses {
			cc, ok := cl.(*ast.CaseClause)
			if !ok {
				continue
			}
			b.cur = blks[i]
			for _, e := range cc.List {
				b.add(e)
			}
			fellThrough := false
			for _, st := range cc.Body {
				if br, isBr := st.(*ast.BranchStmt); isBr && br.Tok == token.FALLTHROUGH {
					if i+1 < len(blks) && b.cur != nil {
						b.edge(b.cur, blks[i+1])
					}
					fellThrough = true
					b.cur = nil
					break
				}
				b.stmt(st)
			}
			if !fellThrough && b.cur != nil {
				b.edge(b.cur, after)
			}
		}
		if !hasDefault {
			b.edge(swBlk, after)
		}
		b.frames = b.frames[:len(b.frames)-1]
		b.cur = after

	case *ast.SelectStmt:
		label := b.takeLabel()
		selBlk := b.cur
		after := b.newBlock()
		b.frames = append(b.frames, loopFrame{label: label, brk: after})
		for _, cl := range s.Body.List {
			cc, ok := cl.(*ast.CommClause)
			if !ok {
				continue
			}
			blk := b.newBlock()
			b.edge(selBlk, blk)
			b.cur = blk
			if cc.Comm != nil {
				b.stmt(cc.Comm)
				b.ensure()
			}
			for _, st := range cc.Body {
				b.stmt(st)
			}
			if b.cur != nil {
				b.edge(b.cur, after)
			}
		}
		b.frames = b.frames[:len(b.frames)-1]
		// select {} with no cases blocks forever: after is unreachable,
		// which is exactly its semantics.
		b.cur = after

	case *ast.BranchStmt:
		b.add(s)
		label := ""
		if s.Label != nil {
			label = s.Label.Name
		}
		switch s.Tok {
		case token.BREAK:
			if f := b.frameFor(label, false); f != nil {
				b.edge(b.cur, f.brk)
			}
		case token.CONTINUE:
			if f := b.frameFor(label, true); f != nil {
				b.edge(b.cur, f.cont)
			}
		case token.GOTO:
			// Conservative: a goto leaves the analyzable flow.
			b.edge(b.cur, b.c.exit)
		}
		b.cur = nil

	case *ast.ReturnStmt:
		b.add(s)
		b.edge(b.cur, b.c.exit)
		b.cur = nil

	case *ast.LabeledStmt:
		b.pendingLabel = s.Label.Name
		b.stmt(s.Stmt)
		b.pendingLabel = ""

	case *ast.ExprStmt:
		b.add(s)
		if isTerminalCall(s.X) {
			b.edge(b.cur, b.c.exit)
			b.cur = nil
		}

	case nil:
		// nothing

	default:
		// Assignments, declarations, sends, defers, go statements,
		// inc/dec, empty statements: straight-line nodes.
		b.add(s)
	}
}

// isTerminalCall recognizes calls that never return: panic and os.Exit.
// Purely syntactic — the CFG has no type information — which is fine
// for the conservative uses the analyzers make of it.
func isTerminalCall(e ast.Expr) bool {
	call, ok := ast.Unparen(e).(*ast.CallExpr)
	if !ok {
		return false
	}
	switch fun := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		return fun.Name == "panic"
	case *ast.SelectorExpr:
		if pkg, ok := fun.X.(*ast.Ident); ok {
			return pkg.Name == "os" && fun.Sel.Name == "Exit"
		}
	}
	return false
}
