package analysis

import (
	"go/token"
	"go/types"
)

// This file is the forward dataflow engine the flow-sensitive analyzers
// share. Facts are sets of "interesting" objects, each carrying the
// source positions that made it interesting (the pending unchecked
// assignment for errflow, the tainting map range for detflow), joined
// by union at control-flow merges and iterated to a fixpoint.

// A posSet is a set of source positions.
type posSet map[token.Pos]bool

// minPos returns the smallest position in the set — the stable
// representative used in diagnostics when branches contribute several.
func (s posSet) minPos() token.Pos {
	min := token.NoPos
	//lint:allow detorder true minimum over the set, same result in any order
	for p := range s {
		if min == token.NoPos || p < min {
			min = p
		}
	}
	//lint:allow detflow minimum is commutative; iteration order cannot change it
	return min
}

// A flowFact maps each tracked object to the positions responsible for
// its current state. Absence means the object is uninteresting here.
type flowFact map[types.Object]posSet

func (f flowFact) clone() flowFact {
	out := make(flowFact, len(f))
	for obj, ps := range f {
		cp := make(posSet, len(ps))
		for p := range ps {
			cp[p] = true
		}
		out[obj] = cp
	}
	return out
}

// mergeFrom unions o into f and reports whether f grew.
func (f flowFact) mergeFrom(o flowFact) bool {
	grew := 0
	for obj, ps := range o {
		dst := f[obj]
		if dst == nil {
			dst = make(posSet, len(ps))
			f[obj] = dst
		}
		for p := range ps {
			if !dst[p] {
				dst[p] = true
				grew++
			}
		}
	}
	return grew > 0
}

func (f flowFact) equal(o flowFact) bool {
	if len(f) != len(o) {
		return false
	}
	for obj, ps := range f {
		ops, ok := o[obj]
		if !ok || len(ps) != len(ops) {
			return false
		}
		for p := range ps {
			if !ops[p] {
				return false
			}
		}
	}
	return true
}

// mark adds pos to obj's set.
func (f flowFact) mark(obj types.Object, pos token.Pos) {
	ps := f[obj]
	if ps == nil {
		ps = make(posSet, 1)
		f[obj] = ps
	}
	ps[pos] = true
}

// A transferFunc consumes one block's in-fact and produces its
// out-fact. It owns `in` (the engine passes a private clone). During
// the fixpoint iterations report is nil; once facts stabilize the
// engine replays every block with report set, so diagnostics fire
// exactly once and against converged facts.
type transferFunc func(b *cfgBlock, in flowFact, report bool) flowFact

// forwardFlow iterates transfer over the graph to a fixpoint (union
// join), then replays every block in index order with reporting on.
// entry seeds the entry block's in-fact.
func forwardFlow(c *cfg, entry flowFact, transfer transferFunc) {
	preds := c.preds()
	order := c.reversePostorder()
	outs := make(map[*cfgBlock]flowFact, len(c.blocks))

	inFor := func(b *cfgBlock) flowFact {
		in := flowFact{}
		if b == c.entry {
			in.mergeFrom(entry)
		}
		for _, p := range preds[b] {
			if o := outs[p]; o != nil {
				in.mergeFrom(o)
			}
		}
		return in
	}

	for changed := true; changed; {
		changed = false
		for _, b := range order {
			out := transfer(b, inFor(b), false)
			if prev := outs[b]; prev == nil || !prev.equal(out) {
				outs[b] = out
				changed = true
			}
		}
	}

	// Reporting pass: blocks in index order so diagnostics come out in
	// a deterministic sequence (Run sorts by position anyway).
	for _, b := range c.blocks {
		transfer(b, inFor(b), true)
	}
}
