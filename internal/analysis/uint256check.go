package analysis

import (
	"go/ast"
	"go/types"
	"strconv"
	"strings"
)

// uint256PkgPath is the checked-arithmetic package the suite protects.
const uint256PkgPath = "leishen/internal/uint256"

// Uint256Check flags overflow-unsafe handling of 256-bit token amounts:
//
//   - discarding the error of checked uint256 arithmetic (Add, Sub, Mul,
//     Div, Mod, MulDiv, ...) with a blank identifier or by ignoring the
//     call result entirely — silent wraparound is exactly the arithmetic
//     misuse class flash-loan attacks exploit, so callers must either
//     handle the error, use an explicit Wrapping/Saturating variant, or
//     assert with a Must variant;
//   - importing math/big in internal packages outside internal/uint256:
//     asset amounts must use the fixed-width value-semantics type, not
//     shared *big.Int pointers.
var Uint256Check = &Analyzer{
	Name: "uint256check",
	Doc:  "flags discarded uint256 overflow errors and math/big use for asset amounts",
	Run:  runUint256Check,
}

func runUint256Check(pass *Pass) {
	pkg := pass.Pkg
	if pkg.Path == uint256PkgPath {
		return
	}
	inInternal := strings.HasPrefix(pkg.Path, "leishen/internal/")
	for _, file := range pkg.Files {
		if inInternal {
			for _, imp := range file.Imports {
				if path, err := strconv.Unquote(imp.Path.Value); err == nil && path == "math/big" {
					pass.Reportf(imp.Pos(), "math/big imported in an internal package; asset amounts must use %s", uint256PkgPath)
				}
			}
		}
		ast.Inspect(file, func(n ast.Node) bool {
			switch stmt := n.(type) {
			case *ast.ExprStmt:
				if call, ok := stmt.X.(*ast.CallExpr); ok && isCheckedUint256Call(pkg, call) {
					pass.Reportf(call.Pos(), "result of checked uint256 arithmetic ignored (overflow would go unnoticed)")
				}
			case *ast.AssignStmt:
				if len(stmt.Rhs) != 1 || len(stmt.Lhs) != 2 {
					return true
				}
				call, ok := stmt.Rhs[0].(*ast.CallExpr)
				if !ok || !isCheckedUint256Call(pkg, call) {
					return true
				}
				if id, ok := stmt.Lhs[1].(*ast.Ident); ok && id.Name == "_" {
					pass.Reportf(stmt.Pos(), "uint256 overflow error discarded with _; handle it or use a Wrapping/Saturating/Must variant")
				}
			}
			return true
		})
	}
}

// isCheckedUint256Call reports whether the call invokes a function of
// the uint256 package whose final result is an error (the checked
// arithmetic and parsing surface).
func isCheckedUint256Call(pkg *Package, call *ast.CallExpr) bool {
	fn := calleeFunc(pkg, call)
	if fn == nil || funcPkgPath(fn) != uint256PkgPath {
		return false
	}
	sig, ok := fn.Type().(*types.Signature)
	if !ok {
		return false
	}
	res := sig.Results()
	if res.Len() != 2 {
		return false
	}
	return types.Identical(res.At(1).Type(), types.Universe.Lookup("error").Type())
}
