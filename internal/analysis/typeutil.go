package analysis

import (
	"go/ast"
	"go/types"
)

// calleeFunc resolves a call expression to the *types.Func it invokes,
// or nil for calls through function values, conversions and built-ins.
func calleeFunc(pkg *Package, call *ast.CallExpr) *types.Func {
	switch fun := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		if fn, ok := pkg.Info.Uses[fun].(*types.Func); ok {
			return fn
		}
	case *ast.SelectorExpr:
		if sel, ok := pkg.Info.Selections[fun]; ok {
			if fn, ok := sel.Obj().(*types.Func); ok {
				return fn
			}
			return nil
		}
		// Package-qualified call (pkg.Fn): not a selection.
		if fn, ok := pkg.Info.Uses[fun.Sel].(*types.Func); ok {
			return fn
		}
	}
	return nil
}

// funcPkgPath returns the defining package path of a function, or "" for
// builtins and universe-scope functions.
func funcPkgPath(fn *types.Func) string {
	if fn == nil || fn.Pkg() == nil {
		return ""
	}
	return fn.Pkg().Path()
}

// isMap reports whether t's core type is a map.
func isMap(t types.Type) bool {
	if t == nil {
		return false
	}
	_, ok := t.Underlying().(*types.Map)
	return ok
}

// isNumeric reports whether t is a numeric basic type (the compound
// assignment operators that commute: + on numbers, | & ^ on integers).
func isNumeric(t types.Type) bool {
	b, ok := t.Underlying().(*types.Basic)
	return ok && b.Info()&types.IsNumeric != 0
}

// isSyncLock reports whether t is exactly sync.Mutex or sync.RWMutex.
func isSyncLock(t types.Type) bool {
	named, ok := t.(*types.Named)
	if !ok {
		return false
	}
	obj := named.Obj()
	if obj.Pkg() == nil || obj.Pkg().Path() != "sync" {
		return false
	}
	return obj.Name() == "Mutex" || obj.Name() == "RWMutex"
}

// containsLock reports whether a value of type t holds a sync.Mutex or
// sync.RWMutex by value (directly, in a struct field, or in an array
// element). Pointers and interfaces never "contain" a lock: copying them
// copies a reference, which is safe.
func containsLock(t types.Type) bool {
	return containsLockRec(t, make(map[types.Type]bool))
}

func containsLockRec(t types.Type, seen map[types.Type]bool) bool {
	if t == nil || seen[t] {
		return false
	}
	seen[t] = true
	if isSyncLock(t) {
		return true
	}
	switch u := t.Underlying().(type) {
	case *types.Struct:
		for i := 0; i < u.NumFields(); i++ {
			if containsLockRec(u.Field(i).Type(), seen) {
				return true
			}
		}
	case *types.Array:
		return containsLockRec(u.Elem(), seen)
	}
	return false
}

// objectsOf returns the type-checker objects bound by the identifiers,
// skipping blanks.
func objectsOf(pkg *Package, idents ...*ast.Ident) map[types.Object]bool {
	out := make(map[types.Object]bool)
	for _, id := range idents {
		if id == nil || id.Name == "_" {
			continue
		}
		if obj := pkg.Info.Defs[id]; obj != nil {
			out[obj] = true
		}
		if obj := pkg.Info.Uses[id]; obj != nil {
			out[obj] = true
		}
	}
	return out
}

// mentions reports whether node references any object in objs.
func mentions(pkg *Package, node ast.Node, objs map[types.Object]bool) bool {
	if node == nil || len(objs) == 0 {
		return false
	}
	found := false
	ast.Inspect(node, func(n ast.Node) bool {
		if found {
			return false
		}
		id, ok := n.(*ast.Ident)
		if !ok {
			return true
		}
		if obj := pkg.Info.Uses[id]; obj != nil && objs[obj] {
			found = true
		}
		return !found
	})
	return found
}

// identObj resolves an identifier expression to its object, unwrapping
// parentheses; nil for anything else.
func identObj(pkg *Package, expr ast.Expr) types.Object {
	id, ok := ast.Unparen(expr).(*ast.Ident)
	if !ok {
		return nil
	}
	if obj := pkg.Info.Uses[id]; obj != nil {
		return obj
	}
	return pkg.Info.Defs[id]
}

// eachFuncBody invokes fn for every function body in the file: declared
// functions, methods, and function literals (each literal body visited
// once, as its own scope).
func eachFuncBody(file *ast.File, fn func(name string, body *ast.BlockStmt)) {
	ast.Inspect(file, func(n ast.Node) bool {
		switch d := n.(type) {
		case *ast.FuncDecl:
			if d.Body != nil {
				fn(d.Name.Name, d.Body)
			}
		case *ast.FuncLit:
			fn("", d.Body)
		}
		return true
	})
}
