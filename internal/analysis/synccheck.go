package analysis

import (
	"go/ast"
	"go/types"
	"sort"
)

// SyncCheck flags durability bugs around *os.File writes: a code path
// that writes to a file but never consumes the error of a Sync or Close
// on that file has no evidence the bytes reached stable storage. The
// archive's crash-safety contract (every fully-synced record survives a
// torn write) depends on exactly this discipline, so the check extends
// the lint gate to the storage subsystem:
//
//   - a write call (Write, WriteString, WriteAt, Truncate) on a local
//     *os.File — or on any interface-typed handle whose method set
//     carries both Write and Sync, the internal/vfs.File shape the
//     fault-injection harness routes the archive through — must be
//     matched, in the same function, by a
//     Sync() or Close() call on that variable whose error result is
//     consumed — unless the variable escapes (returned, stored in a
//     field, or handed to another function), in which case the caller
//     owns the flush;
//   - a write through a struct field (the long-lived handle pattern,
//     e.g. an archive's active segment) is matched package-wide: any
//     checked Sync/Close on the same field anywhere in the package
//     satisfies it, since batching appends and syncing once per
//     checkpoint is the intended cadence.
//
// The same discipline covers the group-commit layer one level up: a
// call to an AppendCheckpointDeferred method — the archive's
// "checkpoint framed but NOT yet durable" primitive, which the
// follower's batched writer relies on — must be matched (same function
// for locals, package-wide for fields, with the same escape rules) by a
// checked Sync, AppendCheckpoint or Close on the same receiver, since a
// deferred checkpoint that is never followed by a sync is a checkpoint
// that silently never becomes observable.
//
// Bare `f.Sync()`, `defer f.Close()` and `_ = f.Close()` discard the
// error and do not count as checks. Intentional fire-and-forget writes
// should be waived with a //lint:allow synccheck directive.
var SyncCheck = &Analyzer{
	Name: "synccheck",
	Doc:  "flags *os.File writes and deferred checkpoints with no matching checked Sync",
	Run:  runSyncCheck,
}

// fileWriteMethods mutate file contents or metadata that must be synced.
var fileWriteMethods = map[string]bool{
	"Write":       true,
	"WriteString": true,
	"WriteAt":     true,
	"Truncate":    true,
}

// fileSyncMethods flush (or flush-and-release) the handle.
var fileSyncMethods = map[string]bool{
	"Sync":  true,
	"Close": true,
}

// walWriteMethods defer durability on write-ahead-log-shaped receivers
// (matched by name on any non-os.File method receiver): the write lands
// but stays unobservable until a sync.
var walWriteMethods = map[string]bool{
	"AppendCheckpointDeferred": true,
}

// walSyncMethods promote deferred writes: an explicit Sync, a syncing
// checkpoint append, or a flush-and-release Close.
var walSyncMethods = map[string]bool{
	"Sync":             true,
	"AppendCheckpoint": true,
	"Close":            true,
}

func runSyncCheck(pass *Pass) {
	// Field-handle aggregation spans the package: writes and checked
	// syncs are keyed by the field's type-checker object. File writes
	// and deferred checkpoints keep separate write tallies (the
	// diagnostics differ) but share the checked-sync tally.
	fieldWrites := make(map[types.Object]ast.Node)
	walFieldWrites := make(map[types.Object]ast.Node)
	fieldSynced := make(map[types.Object]bool)

	for _, file := range pass.Pkg.Files {
		eachFuncBody(file, func(name string, body *ast.BlockStmt) {
			syncCheckFunc(pass, body, fieldWrites, walFieldWrites, fieldSynced)
		})
	}

	report := func(writes map[types.Object]ast.Node, format string) {
		unsynced := make([]types.Object, 0, len(writes))
		for obj := range writes {
			if !fieldSynced[obj] {
				unsynced = append(unsynced, obj)
			}
		}
		sort.Slice(unsynced, func(i, j int) bool {
			return writes[unsynced[i]].Pos() < writes[unsynced[j]].Pos()
		})
		for _, obj := range unsynced {
			pass.Reportf(writes[obj].Pos(), format, obj.Name())
		}
	}
	report(fieldWrites, "field %s is written without any checked Sync or Close in this package")
	report(walFieldWrites, "field %s takes deferred checkpoints without any checked Sync in this package")
}

// syncCheckFunc analyzes one function body: local receivers (files and
// deferred-checkpoint sinks alike) are resolved within the body; field
// receivers feed the package tallies.
func syncCheckFunc(pass *Pass, body *ast.BlockStmt, fieldWrites, walFieldWrites map[types.Object]ast.Node, fieldSynced map[types.Object]bool) {
	pkg := pass.Pkg
	unconsumed := unconsumedCalls(body)

	localWrites := make(map[types.Object]ast.Node)
	walLocalWrites := make(map[types.Object]ast.Node)
	localSynced := make(map[types.Object]bool)

	inner := func(n ast.Node) bool {
		if _, ok := n.(*ast.FuncLit); ok && n.Pos() != body.Pos() {
			return false // separate scope, visited on its own
		}
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		var isWrite, isSync, isWal bool
		sel, method, ok := osFileMethodCall(pkg, call)
		if !ok {
			sel, method, ok = vfsFileMethodCall(pkg, call)
		}
		if ok {
			isWrite, isSync = fileWriteMethods[method], fileSyncMethods[method]
		} else {
			if sel, method, ok = walMethodCall(pkg, call); !ok {
				return true
			}
			isWrite, isSync, isWal = walWriteMethods[method], walSyncMethods[method], true
		}
		if !isWrite && !isSync {
			return true
		}
		writes, fWrites := localWrites, fieldWrites
		if isWal {
			writes, fWrites = walLocalWrites, walFieldWrites
		}
		recv := ast.Unparen(sel.X)
		if id, isIdent := recv.(*ast.Ident); isIdent {
			obj := identObj(pkg, id)
			if obj == nil {
				return true
			}
			if isWrite && writes[obj] == nil {
				writes[obj] = call
			}
			if isSync && !unconsumed[call] {
				localSynced[obj] = true
			}
			return true
		}
		if fieldSel, isSel := recv.(*ast.SelectorExpr); isSel {
			obj := selectedField(pkg, fieldSel)
			if obj == nil {
				return true
			}
			if isWrite && fWrites[obj] == nil {
				fWrites[obj] = call
			}
			if isSync && !unconsumed[call] {
				fieldSynced[obj] = true
			}
		}
		return true
	}
	ast.Inspect(body, inner)

	reportLocal := func(writes map[types.Object]ast.Node, format string) {
		objs := make([]types.Object, 0, len(writes))
		for obj := range writes {
			objs = append(objs, obj)
		}
		sort.Slice(objs, func(i, j int) bool {
			return writes[objs[i]].Pos() < writes[objs[j]].Pos()
		})
		for _, obj := range objs {
			if localSynced[obj] || escapesFunc(pkg, body, obj) {
				continue
			}
			pass.Reportf(writes[obj].Pos(), format, obj.Name())
		}
	}
	reportLocal(localWrites, "%s is written without a checked Sync or Close in this function")
	reportLocal(walLocalWrites, "%s takes a deferred checkpoint without a checked Sync in this function")
}

// osFileMethodCall matches a method call on an *os.File receiver and
// returns the selector and method name.
func osFileMethodCall(pkg *Package, call *ast.CallExpr) (*ast.SelectorExpr, string, bool) {
	sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
	if !ok {
		return nil, "", false
	}
	fn := calleeFunc(pkg, call)
	if fn == nil || funcPkgPath(fn) != "os" {
		return nil, "", false
	}
	sig, ok := fn.Type().(*types.Signature)
	if !ok {
		return nil, "", false
	}
	recv := sig.Recv()
	if recv == nil {
		return nil, "", false
	}
	ptr, ok := recv.Type().(*types.Pointer)
	if !ok {
		return nil, "", false
	}
	named, ok := ptr.Elem().(*types.Named)
	if !ok || named.Obj().Name() != "File" {
		return nil, "", false
	}
	return sel, fn.Name(), true
}

// vfsFileMethodCall matches a method call on an interface-typed
// receiver whose method set carries both Write([]byte) (int, error)
// and Sync() error — the shape of internal/vfs.File, the
// fault-injectable handle the archive writes through. The match is
// structural, not nominal, so fixture interfaces and future
// vfs.File-shaped abstractions are held to the same discipline as
// *os.File without this package importing them.
func vfsFileMethodCall(pkg *Package, call *ast.CallExpr) (*ast.SelectorExpr, string, bool) {
	sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
	if !ok {
		return nil, "", false
	}
	s, ok := pkg.Info.Selections[sel]
	if !ok || s.Kind() != types.MethodVal {
		return nil, "", false
	}
	iface, ok := s.Recv().Underlying().(*types.Interface)
	if !ok || !isFileShapedInterface(iface) {
		return nil, "", false
	}
	return sel, s.Obj().Name(), true
}

// isFileShapedInterface reports whether the (embedding-expanded) method
// set includes a Write with one parameter and two results and a Sync
// with no parameters and one result — close enough to pin the durable-
// handle contract without chasing exact parameter types.
func isFileShapedInterface(iface *types.Interface) bool {
	var hasWrite, hasSync bool
	for i := 0; i < iface.NumMethods(); i++ {
		m := iface.Method(i)
		sig, ok := m.Type().(*types.Signature)
		if !ok {
			continue
		}
		switch m.Name() {
		case "Write":
			hasWrite = sig.Params().Len() == 1 && sig.Results().Len() == 2
		case "Sync":
			hasSync = sig.Params().Len() == 0 && sig.Results().Len() == 1
		}
	}
	return hasWrite && hasSync
}

// walMethodCall matches a method call whose name belongs to the
// deferred-durability families (walWriteMethods / walSyncMethods) on
// any non-os receiver, and returns the selector and method name. The
// match is by name, not by concrete type, so fixture types and future
// stores with the same contract are covered without importing them.
func walMethodCall(pkg *Package, call *ast.CallExpr) (*ast.SelectorExpr, string, bool) {
	sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
	if !ok {
		return nil, "", false
	}
	fn := calleeFunc(pkg, call)
	if fn == nil || fn.Type() == nil {
		return nil, "", false
	}
	sig, ok := fn.Type().(*types.Signature)
	if !ok || sig.Recv() == nil {
		return nil, "", false
	}
	if !walWriteMethods[fn.Name()] && !walSyncMethods[fn.Name()] {
		return nil, "", false
	}
	return sel, fn.Name(), true
}

// selectedField resolves x.f to the field object f, or nil when the
// selector is not a struct-field access.
func selectedField(pkg *Package, sel *ast.SelectorExpr) types.Object {
	if s, ok := pkg.Info.Selections[sel]; ok && s.Kind() == types.FieldVal {
		return s.Obj()
	}
	return nil
}

// unconsumedCalls returns the set of call expressions whose results are
// discarded: statement-level calls, deferred and go'd calls, and calls
// assigned only to the blank identifier.
func unconsumedCalls(body *ast.BlockStmt) map[*ast.CallExpr]bool {
	out := make(map[*ast.CallExpr]bool)
	ast.Inspect(body, func(n ast.Node) bool {
		switch node := n.(type) {
		case *ast.ExprStmt:
			if call, ok := node.X.(*ast.CallExpr); ok {
				out[call] = true
			}
		case *ast.DeferStmt:
			out[node.Call] = true
		case *ast.GoStmt:
			out[node.Call] = true
		case *ast.AssignStmt:
			if len(node.Rhs) != 1 {
				return true
			}
			call, ok := node.Rhs[0].(*ast.CallExpr)
			if !ok {
				return true
			}
			for _, lhs := range node.Lhs {
				if id, ok := lhs.(*ast.Ident); !ok || id.Name != "_" {
					return true // at least one result is bound
				}
			}
			out[call] = true
		}
		return true
	})
	return out
}

// escapesFunc reports whether obj is used in the body outside the
// os.File method-call receivers already tallied — returned, assigned to
// a field or another variable, placed in a composite literal, or passed
// as a call argument. An escaping handle's flush is the new owner's
// responsibility.
func escapesFunc(pkg *Package, body *ast.BlockStmt, obj types.Object) bool {
	escapes := false
	ast.Inspect(body, func(n ast.Node) bool {
		if escapes {
			return false
		}
		switch node := n.(type) {
		case *ast.ReturnStmt:
			for _, res := range node.Results {
				if identObj(pkg, res) == obj {
					escapes = true
				}
			}
		case *ast.AssignStmt:
			for _, rhs := range node.Rhs {
				if identObj(pkg, rhs) == obj {
					escapes = true
				}
			}
		case *ast.CompositeLit:
			for _, elt := range node.Elts {
				e := elt
				if kv, ok := elt.(*ast.KeyValueExpr); ok {
					e = kv.Value
				}
				if identObj(pkg, e) == obj {
					escapes = true
				}
			}
		case *ast.CallExpr:
			// The receiver of f.Write/f.Sync sits in the selector, not
			// the argument list, so method calls on f never trip this.
			for _, arg := range node.Args {
				if identObj(pkg, arg) == obj {
					escapes = true
				}
			}
		}
		return !escapes
	})
	return escapes
}
