package analysis

import (
	"go/ast"
	"go/types"
	"strings"
)

// purePackagePrefixes are the pipeline packages whose per-transaction
// behavior must be a pure function of their inputs: running the same
// receipt through them twice must produce the identical report, or the
// paper's experiments stop being replayable.
var purePackagePrefixes = []string{
	"leishen/internal/core",
	"leishen/internal/trades",
	"leishen/internal/simplify",
	"leishen/internal/tagging",
}

// pureMarker opts additional packages into purity enforcement via a
// comment anywhere in the package ("// leishen:pure").
const pureMarker = "leishen:pure"

// Purity flags ambient-state reads inside pure pipeline packages
// (internal/core, internal/trades, internal/simplify, internal/tagging,
// and any package carrying a "leishen:pure" comment):
//
//   - time.Now / time.Since / time.Until — wall-clock reads; inject a
//     clock function instead (storing the time.Now function value for
//     callers to override is fine; calling it in the pipeline is not);
//   - package-level math/rand functions — they draw from the global,
//     unseeded source; thread a seeded *rand.Rand instead;
//   - os.Getenv / os.LookupEnv / os.Environ — environment reads make
//     verdicts depend on the deployment, not the transaction.
var Purity = &Analyzer{
	Name: "purity",
	Doc:  "flags wall-clock, global-rand and environment reads in pure pipeline packages",
	Run:  runPurity,
}

func runPurity(pass *Pass) {
	if !isPurePackage(pass.Pkg) {
		return
	}
	for _, file := range pass.Pkg.Files {
		ast.Inspect(file, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			fn := calleeFunc(pass.Pkg, call)
			if fn == nil {
				return true
			}
			if msg := impureCall(fn); msg != "" {
				pass.Reportf(call.Pos(), "%s", msg)
			}
			return true
		})
	}
}

// isPurePackage reports whether the package opted into (or is forced
// into) purity enforcement.
func isPurePackage(pkg *Package) bool {
	for _, prefix := range purePackagePrefixes {
		if pkg.Path == prefix || strings.HasPrefix(pkg.Path, prefix+"/") {
			return true
		}
	}
	for _, f := range pkg.Files {
		for _, cg := range f.Comments {
			if strings.Contains(cg.Text(), pureMarker) {
				return true
			}
		}
	}
	return false
}

// impureCall classifies a resolved callee as an ambient-state read,
// returning a diagnostic message or "".
func impureCall(fn *types.Func) string {
	switch funcPkgPath(fn) {
	case "time":
		switch fn.Name() {
		case "Now", "Since", "Until":
			return "time." + fn.Name() + " reads the wall clock in a pure pipeline package; inject a clock function"
		}
	case "math/rand", "math/rand/v2":
		sig, ok := fn.Type().(*types.Signature)
		if !ok || sig.Recv() != nil {
			return "" // methods on a seeded *rand.Rand are deterministic
		}
		switch fn.Name() {
		case "New", "NewSource", "NewZipf", "NewPCG", "NewChaCha8":
			return "" // constructors take an explicit seed
		}
		return "math/rand." + fn.Name() + " draws from the global rand source; thread a seeded *rand.Rand"
	case "os":
		switch fn.Name() {
		case "Getenv", "LookupEnv", "Environ":
			return "os." + fn.Name() + " reads the environment in a pure pipeline package; pass configuration explicitly"
		}
	}
	return ""
}
