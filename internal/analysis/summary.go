package analysis

import (
	"go/ast"
	"go/types"
)

// This file computes lightweight per-function summaries for the
// flow-sensitive analyzers: enough interprocedural knowledge to make
// intraprocedural verdicts honest without whole-program analysis.
//
//   - errflow asks "if I pass my pending error to this callee, does the
//     callee actually look at it?" — a call to a function that ignores
//     its error parameter is not a check.
//   - leakcheck asks "does this callee take ownership of the
//     goroutine's lifecycle?" — a context, quit-channel or WaitGroup
//     parameter, or a blocking receive in the body, means someone can
//     end it.
//
// Summaries cover the package's own declared functions and methods
// (the bodies the loader parsed). Calls that resolve elsewhere get the
// conservative answer: assume the callee checks its error and manages
// its goroutines.

// A funcSummary describes one declared function for the flow analyzers.
type funcSummary struct {
	// decl is the declaration, body included.
	decl *ast.FuncDecl
	// readErrParams are the error-typed parameter objects the body
	// mentions; an error parameter absent here is accepted and ignored.
	readErrParams map[types.Object]bool
	// errParams are all error-typed parameter objects, read or not.
	errParams map[types.Object]bool
	// cancelOwner reports that the function can be stopped from
	// outside: it takes a context.Context, a channel, or a WaitGroup
	// pointer, or its body blocks on a receive/select.
	cancelOwner bool
}

// summaries builds (once) the package's function-summary table, keyed
// by the declared *types.Func.
func (p *Package) summaries() map[*types.Func]*funcSummary {
	if p.summaryIndex != nil {
		return p.summaryIndex
	}
	idx := make(map[*types.Func]*funcSummary)
	for _, f := range p.Files {
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			fn, ok := p.Info.Defs[fd.Name].(*types.Func)
			if !ok {
				continue
			}
			idx[fn] = p.summarize(fd)
		}
	}
	p.summaryIndex = idx
	return idx
}

// summarize computes one declaration's summary.
func (p *Package) summarize(fd *ast.FuncDecl) *funcSummary {
	s := &funcSummary{
		decl:          fd,
		readErrParams: make(map[types.Object]bool),
		errParams:     make(map[types.Object]bool),
	}
	if fd.Type.Params != nil {
		for _, field := range fd.Type.Params.List {
			for _, name := range field.Names {
				obj := p.Info.Defs[name]
				if obj == nil {
					continue
				}
				if isErrorType(obj.Type()) {
					s.errParams[obj] = true
				}
				if isCancelParamType(obj.Type()) {
					s.cancelOwner = true
				}
			}
		}
	}
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		switch node := n.(type) {
		case *ast.Ident:
			if obj := p.Info.Uses[node]; obj != nil && s.errParams[obj] {
				s.readErrParams[obj] = true
			}
		case *ast.UnaryExpr:
			// A blocking receive anywhere in the body means the
			// goroutine can be ended by a close or a send.
			if node.Op.String() == "<-" {
				s.cancelOwner = true
			}
		case *ast.SelectStmt:
			s.cancelOwner = true
		case *ast.RangeStmt:
			if tv, ok := p.Info.Types[node.X]; ok && isChan(tv.Type) {
				s.cancelOwner = true
			}
		}
		return true
	})
	return s
}

// funcBodyOf returns the parsed body of a function declared in this
// package, or nil when the callee is foreign or body-less.
func (p *Package) funcBodyOf(fn *types.Func) *ast.FuncDecl {
	if fn == nil {
		return nil
	}
	if s := p.summaries()[fn]; s != nil {
		return s.decl
	}
	return nil
}

// readsErrorArg reports whether passing an error as the call's i-th
// argument counts as handing it to someone who looks at it. Unknown
// callees (other packages, function values, interface methods) get the
// benefit of the doubt.
func readsErrorArg(pkg *Package, call *ast.CallExpr, i int) bool {
	fn := calleeFunc(pkg, call)
	if fn == nil {
		return true
	}
	s := pkg.summaries()[fn]
	if s == nil {
		return true // foreign callee: assume it checks
	}
	sig, ok := fn.Type().(*types.Signature)
	if !ok || i >= sig.Params().Len() {
		return true
	}
	// The signature's *types.Var for a source-checked function is the
	// same object the body's identifiers resolve to.
	pv := sig.Params().At(i)
	if !s.errParams[pv] {
		return true // not an error parameter we track
	}
	return s.readErrParams[pv]
}

// isErrorType reports whether t is exactly the built-in error interface.
func isErrorType(t types.Type) bool {
	if t == nil {
		return false
	}
	return types.Identical(t, types.Universe.Lookup("error").Type())
}

// isChan reports whether t's core type is a channel.
func isChan(t types.Type) bool {
	if t == nil {
		return false
	}
	_, ok := t.Underlying().(*types.Chan)
	return ok
}

// isCancelParamType recognizes parameter types that hand lifecycle
// control to the caller: context.Context, any channel, *sync.WaitGroup.
func isCancelParamType(t types.Type) bool {
	if t == nil {
		return false
	}
	if isChan(t) {
		return true
	}
	if named, ok := t.(*types.Named); ok {
		obj := named.Obj()
		if obj.Pkg() != nil && obj.Pkg().Path() == "context" && obj.Name() == "Context" {
			return true
		}
	}
	if ptr, ok := t.(*types.Pointer); ok {
		if named, ok := ptr.Elem().(*types.Named); ok {
			obj := named.Obj()
			return obj.Pkg() != nil && obj.Pkg().Path() == "sync" && obj.Name() == "WaitGroup"
		}
	}
	return false
}
