package analysis

import (
	"go/token"
	"strings"
	"testing"
)

func pos(file string, line, col int) token.Position {
	return token.Position{Filename: file, Line: line, Column: col}
}

// fixturePkgs loads a handful of fixture packages with known findings —
// enough packages to exercise the parallel fan-out.
func fixturePkgs(t *testing.T) []*Package {
	t.Helper()
	l := fixtureLoader(t)
	var pkgs []*Package
	for _, name := range []string{
		"detorderbad", "detordergood", "detflowbad", "detflowgood",
		"errflowbad", "errflowgood", "leakbad", "leakgood",
		"lockbad", "puritybad", "syncbad", "uint256bad",
	} {
		pkg, err := l.LoadDir("testdata/src/"+name, "leishen/internal/analysis/testdata/src/"+name)
		if err != nil {
			t.Fatalf("load %s: %v", name, err)
		}
		pkgs = append(pkgs, pkg)
	}
	return pkgs
}

// render produces the exact text output the driver prints.
func render(diags []Diagnostic) string {
	var b strings.Builder
	for _, d := range diags {
		b.WriteString(d.String())
		b.WriteByte('\n')
	}
	return b.String()
}

// TestParallelMatchesSerial proves the acceptance property directly:
// the parallel driver's output is byte-identical to the serial one,
// at several worker counts and across repeated runs.
func TestParallelMatchesSerial(t *testing.T) {
	pkgs := fixturePkgs(t)
	cfgBase := RunConfig{CheckWaivers: true, StrictWaivers: true}

	serialCfg := cfgBase
	serialCfg.Parallel = 1
	serial := render(RunWith(pkgs, Suite(), serialCfg))
	if serial == "" {
		t.Fatal("fixture packages must produce findings, or the comparison is vacuous")
	}

	for _, workers := range []int{2, 4, 16} {
		cfg := cfgBase
		cfg.Parallel = workers
		for run := 0; run < 3; run++ {
			got := render(RunWith(pkgs, Suite(), cfg))
			if got != serial {
				t.Fatalf("parallel(%d) run %d differs from serial:\n--- serial ---\n%s--- parallel ---\n%s",
					workers, run, serial, got)
			}
		}
	}
}

// TestBaselineRoundTrip writes the current findings as a baseline and
// applies it back: everything suppressed, nothing stale, nothing fresh.
func TestBaselineRoundTrip(t *testing.T) {
	pkgs := fixturePkgs(t)
	diags := Run(pkgs, Suite())
	if len(diags) == 0 {
		t.Fatal("need findings to round-trip")
	}

	var buf strings.Builder
	if err := WriteBaseline(&buf, diags); err != nil {
		t.Fatalf("write: %v", err)
	}
	bl, err := ParseBaseline(strings.NewReader(buf.String()))
	if err != nil {
		t.Fatalf("parse: %v", err)
	}
	if bl.Len() != len(diags) {
		t.Fatalf("baseline has %d entries, want %d", bl.Len(), len(diags))
	}
	fresh, stale := bl.Apply(diags)
	if len(fresh) != 0 || len(stale) != 0 {
		t.Fatalf("round trip: %d fresh, %d stale, want 0/0", len(fresh), len(stale))
	}
}

// TestBaselineStaleDetection pins the shrink-only contract: an entry no
// finding matches is reported stale, in baseline file order.
func TestBaselineStaleDetection(t *testing.T) {
	diags := []Diagnostic{
		{Analyzer: "errflow", Pos: pos("a.go", 3, 1), Message: "live finding"},
	}
	blText := "# comment line\n" +
		"a.go:3:1: live finding [errflow]\n" +
		"b.go:9:2: fixed finding two [detorder]\n" +
		"a.go:1:1: fixed finding one [errflow]\n"
	bl, err := ParseBaseline(strings.NewReader(blText))
	if err != nil {
		t.Fatalf("parse: %v", err)
	}
	fresh, stale := bl.Apply(diags)
	if len(fresh) != 0 {
		t.Fatalf("fresh = %v, want none (the live finding is baselined)", fresh)
	}
	want := []string{
		"b.go:9:2: fixed finding two [detorder]",
		"a.go:1:1: fixed finding one [errflow]",
	}
	if len(stale) != len(want) {
		t.Fatalf("stale = %v, want %v", stale, want)
	}
	for i := range want {
		if stale[i] != want[i] {
			t.Fatalf("stale[%d] = %q, want %q (baseline file order)", i, stale[i], want[i])
		}
	}
}

// TestBaselineNewFindingSurvives: a finding outside the baseline is
// returned fresh — baselines accept the past, not the future.
func TestBaselineNewFindingSurvives(t *testing.T) {
	diags := []Diagnostic{
		{Analyzer: "errflow", Pos: pos("a.go", 3, 1), Message: "old finding"},
		{Analyzer: "errflow", Pos: pos("a.go", 8, 1), Message: "new finding"},
	}
	bl, err := ParseBaseline(strings.NewReader("a.go:3:1: old finding [errflow]\n"))
	if err != nil {
		t.Fatalf("parse: %v", err)
	}
	fresh, stale := bl.Apply(diags)
	if len(stale) != 0 {
		t.Fatalf("stale = %v, want none", stale)
	}
	if len(fresh) != 1 || fresh[0].Message != "new finding" {
		t.Fatalf("fresh = %v, want exactly the new finding", fresh)
	}
}

// TestBaselineRejectsDuplicates: duplicate entries mask each other and
// break stale accounting, so parsing fails loudly.
func TestBaselineRejectsDuplicates(t *testing.T) {
	_, err := ParseBaseline(strings.NewReader("a.go:1:1: x [errflow]\na.go:1:1: x [errflow]\n"))
	if err == nil || !strings.Contains(err.Error(), "duplicate") {
		t.Fatalf("err = %v, want a duplicate-entry error", err)
	}
}
