package analysis

import (
	"go/ast"
	"go/token"
	"go/types"
	"sort"
)

// ErrFlow flags error values that are lost before anyone looks at them.
// It runs a forward dataflow over each function's CFG, tracking every
// error-typed local (and error parameter) through assignments, branches
// and loops:
//
//   - an error assigned and then reassigned on a path with no
//     intervening read — the first failure is silently dropped
//     (including `err = nil` resets);
//   - an error-typed result bound to the blank identifier
//     (`v, _ := f()`, `_ = f()`) — an explicit discard that must carry
//     a waiver if it is intentional;
//   - a `:=` that shadows an outer error variable whose error is still
//     unchecked — the classic `if err := g(); ...` typo that orphans
//     the outer error.
//
// "Read" means any use: a nil comparison, a return, errors.Is/As/Join,
// or passing the value to a callee — unless the callee is declared in
// the same package and its summary says it never looks at that error
// parameter, in which case the call is not a check. Errors captured by
// closures or whose address is taken are owned elsewhere and left
// alone.
//
// The archive and WAL fsync paths motivated the analyzer: synccheck
// proves a Sync call exists, errflow proves the error that Sync
// returned still means something when the function acts on it.
var ErrFlow = &Analyzer{
	Name: "errflow",
	Doc:  "flags errors overwritten, discarded to _, or shadowed before any check",
	Run:  runErrFlow,
}

func runErrFlow(pass *Pass) {
	for _, file := range pass.Pkg.Files {
		ast.Inspect(file, func(n ast.Node) bool {
			switch d := n.(type) {
			case *ast.FuncDecl:
				if d.Body != nil {
					errflowFunc(pass, d.Type, d.Body)
				}
			case *ast.FuncLit:
				errflowFunc(pass, d.Type, d.Body)
			}
			return true
		})
	}
}

// errflowFunc analyzes one function body.
func errflowFunc(pass *Pass, ftype *ast.FuncType, body *ast.BlockStmt) {
	pkg := pass.Pkg
	e := &errflowState{
		pass:    pass,
		pkg:     pkg,
		tracked: errorLocals(pkg, ftype, body),
	}
	if len(e.tracked) == 0 {
		errflowDiscards(pass, body)
		return
	}
	e.escaped = escapedObjects(pkg, body, e.tracked)

	// Error parameters arrive carrying the caller's error: overwriting
	// one before reading it drops that error.
	entry := flowFact{}
	if ftype.Params != nil {
		for _, field := range ftype.Params.List {
			for _, name := range field.Names {
				if obj := pkg.Info.Defs[name]; obj != nil && e.tracked[obj] && !e.escaped[obj] {
					entry.mark(obj, name.Pos())
				}
			}
		}
	}

	c := buildCFG(body)
	forwardFlow(c, entry, e.transfer)
	errflowDiscards(pass, body)
}

type errflowState struct {
	pass *Pass
	pkg  *Package
	// tracked are the function's error-typed locals and parameters.
	tracked map[types.Object]bool
	// escaped are tracked objects captured by a closure or
	// address-taken: their checks may happen elsewhere, so they are
	// exempt.
	escaped map[types.Object]bool
}

// transfer walks one block's nodes: reads clear pending state, writes
// report overwrites/shadows and set new pending state.
func (e *errflowState) transfer(b *cfgBlock, in flowFact, report bool) flowFact {
	for _, n := range b.nodes {
		switch node := n.(type) {
		case *ast.AssignStmt:
			// Evaluation order: every RHS (and LHS index expressions)
			// reads first, then the targets are written.
			for _, rhs := range node.Rhs {
				e.consumeReads(in, rhs)
			}
			for i, lhs := range node.Lhs {
				e.assignTarget(in, node, lhs, i, report)
			}
		case *ast.DeclStmt:
			if gd, ok := node.Decl.(*ast.GenDecl); ok {
				for _, spec := range gd.Specs {
					vs, ok := spec.(*ast.ValueSpec)
					if !ok {
						continue
					}
					for _, v := range vs.Values {
						e.consumeReads(in, v)
					}
					for _, name := range vs.Names {
						if len(vs.Values) > 0 {
							e.defineVar(in, name, report)
						}
					}
				}
			}
		case *ast.RangeStmt:
			e.consumeReads(in, node.X)
		case ast.Expr: // decomposed conditions, switch tags
			e.consumeReads(in, node)
		case ast.Stmt: // returns, sends, defers, go, incdec, expr stmts
			e.consumeReads(in, node)
		}
	}
	return in
}

// assignTarget handles one assignment destination.
func (e *errflowState) assignTarget(in flowFact, s *ast.AssignStmt, lhs ast.Expr, i int, report bool) {
	id, ok := ast.Unparen(lhs).(*ast.Ident)
	if !ok {
		// Field/index targets read their base expression.
		e.consumeReads(in, lhs)
		return
	}
	if id.Name == "_" {
		return // blank discards are the syntactic pass's job
	}
	obj := identObj(e.pkg, id)
	if obj == nil || !e.tracked[obj] || e.escaped[obj] {
		return
	}

	if s.Tok == token.DEFINE && e.pkg.Info.Defs[id] != nil {
		// A fresh object: does it shadow a pending outer error?
		if report {
			e.reportShadows(in, obj, id.Name, id.Pos())
		}
	} else if report {
		if ps := in[obj]; len(ps) > 0 {
			e.pass.Reportf(s.Pos(), "%s is overwritten before the error assigned at line %d is checked",
				obj.Name(), e.pkg.Fset.Position(ps.minPos()).Line)
		}
	}

	delete(in, obj)
	if errorBearingRHS(e.pkg, s, i) {
		in.mark(obj, s.Pos())
	}
}

// defineVar handles `var err error = v` declarations.
func (e *errflowState) defineVar(in flowFact, name *ast.Ident, report bool) {
	obj := e.pkg.Info.Defs[name]
	if obj == nil || !e.tracked[obj] || e.escaped[obj] {
		return
	}
	if report {
		e.reportShadows(in, obj, name.Name, name.Pos())
	}
	delete(in, obj)
	in.mark(obj, name.Pos())
}

// reportShadows reports every pending same-named outer error a fresh
// declaration of obj hides. Candidate lines are collected and sorted
// first so the diagnostics never depend on map iteration order.
func (e *errflowState) reportShadows(in flowFact, obj types.Object, name string, at token.Pos) {
	var lines []int
	for outer, ps := range in {
		if outer != obj && outer.Name() == name && len(ps) > 0 {
			lines = append(lines, e.pkg.Fset.Position(ps.minPos()).Line)
		}
	}
	sort.Ints(lines)
	for _, line := range lines {
		e.pass.Reportf(at, "declaration shadows %s, whose error from line %d is still unchecked", name, line)
	}
}

// consumeReads clears pending state for every tracked error the node
// reads. A bare identifier passed as a call argument only counts when
// the callee's summary says the parameter is actually looked at.
func (e *errflowState) consumeReads(in flowFact, n ast.Node) {
	if n == nil {
		return
	}
	ast.Inspect(n, func(x ast.Node) bool {
		switch node := x.(type) {
		case *ast.FuncLit:
			return false // closure uses were handled by escape analysis
		case *ast.CallExpr:
			for i, arg := range node.Args {
				if id, ok := ast.Unparen(arg).(*ast.Ident); ok {
					if obj := identObj(e.pkg, id); obj != nil && e.tracked[obj] {
						if readsErrorArg(e.pkg, node, i) {
							delete(in, obj)
						}
						continue
					}
				}
				e.consumeReads(in, arg)
			}
			e.consumeReads(in, node.Fun)
			return false
		case *ast.AssignStmt:
			// Nested in an if-init already decomposed; defensive.
			return true
		case *ast.Ident:
			if obj := e.pkg.Info.Uses[node]; obj != nil && e.tracked[obj] {
				delete(in, obj)
			}
		}
		return true
	})
}

// errorBearingRHS reports whether assignment target i receives a value
// that can carry a non-nil error: anything but a literal nil.
func errorBearingRHS(pkg *Package, s *ast.AssignStmt, i int) bool {
	var rhs ast.Expr
	switch {
	case len(s.Rhs) == len(s.Lhs):
		rhs = s.Rhs[i]
	case len(s.Rhs) == 1:
		rhs = s.Rhs[0] // multi-value call: every target gets a component
	default:
		return true
	}
	if id, ok := ast.Unparen(rhs).(*ast.Ident); ok && id.Name == "nil" {
		if _, isNil := pkg.Info.Uses[id].(*types.Nil); isNil {
			return false
		}
	}
	return true
}

// errorLocals collects the function's error-typed parameter and local
// variable objects.
func errorLocals(pkg *Package, ftype *ast.FuncType, body *ast.BlockStmt) map[types.Object]bool {
	out := make(map[types.Object]bool)
	collect := func(id *ast.Ident) {
		if id == nil || id.Name == "_" {
			return
		}
		if obj := pkg.Info.Defs[id]; obj != nil && isErrorType(obj.Type()) {
			out[obj] = true
		}
	}
	if ftype.Params != nil {
		for _, field := range ftype.Params.List {
			for _, name := range field.Names {
				collect(name)
			}
		}
	}
	ast.Inspect(body, func(n ast.Node) bool {
		if id, ok := n.(*ast.Ident); ok {
			collect(id)
		}
		return true
	})
	return out
}

// escapedObjects finds tracked objects the function no longer owns
// exclusively: captured by a function literal or address-taken.
func escapedObjects(pkg *Package, body *ast.BlockStmt, tracked map[types.Object]bool) map[types.Object]bool {
	out := make(map[types.Object]bool)
	var inspect func(n ast.Node, inClosure bool)
	inspect = func(n ast.Node, inClosure bool) {
		ast.Inspect(n, func(x ast.Node) bool {
			switch node := x.(type) {
			case *ast.FuncLit:
				if !inClosure {
					inspect(node.Body, true)
					return false
				}
			case *ast.UnaryExpr:
				if node.Op == token.AND {
					if obj := identObj(pkg, node.X); obj != nil && tracked[obj] {
						out[obj] = true
					}
				}
			case *ast.Ident:
				if inClosure {
					if obj := pkg.Info.Uses[node]; obj != nil && tracked[obj] {
						out[obj] = true
					}
				}
			}
			return true
		})
	}
	inspect(body, false)
	return out
}

// errflowDiscards is the syntactic sibling pass: error results bound to
// the blank identifier. It needs no flow — the discard is the
// assignment itself.
func errflowDiscards(pass *Pass, body *ast.BlockStmt) {
	pkg := pass.Pkg
	ast.Inspect(body, func(n ast.Node) bool {
		if _, ok := n.(*ast.FuncLit); ok && n.Pos() != body.Pos() {
			return false // literals run their own errflowFunc visit
		}
		s, ok := n.(*ast.AssignStmt)
		if !ok {
			return true
		}
		for i, lhs := range s.Lhs {
			id, ok := ast.Unparen(lhs).(*ast.Ident)
			if !ok || id.Name != "_" {
				continue
			}
			if t := blankTargetType(pkg, s, i); t != nil && isErrorType(t) {
				pass.Reportf(s.Pos(), "error result discarded to _ (check it or waive with a reason)")
			}
		}
		return true
	})
}

// blankTargetType resolves the type flowing into assignment target i,
// unpacking single-call multi-value RHSes. Only call results count:
// `_ = err` is an explicit read-and-drop of a value the function
// already owns, not a new discard.
func blankTargetType(pkg *Package, s *ast.AssignStmt, i int) types.Type {
	if len(s.Rhs) == len(s.Lhs) {
		if _, ok := ast.Unparen(s.Rhs[i]).(*ast.CallExpr); !ok {
			return nil
		}
		if tv, ok := pkg.Info.Types[s.Rhs[i]]; ok {
			return tv.Type
		}
		return nil
	}
	if len(s.Rhs) != 1 {
		return nil
	}
	call, ok := ast.Unparen(s.Rhs[0]).(*ast.CallExpr)
	if !ok {
		return nil
	}
	tv, ok := pkg.Info.Types[call]
	if !ok {
		return nil
	}
	tuple, ok := tv.Type.(*types.Tuple)
	if !ok || i >= tuple.Len() {
		return nil
	}
	return tuple.At(i).Type()
}
