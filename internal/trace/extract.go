// Package trace extracts the account-level asset transfer history of a
// transaction (paper §V-A).
//
// Ether transfers live in internal transactions and ERC20 transfers live
// in event logs; the paper's authors patched Geth v1.10.14 to record the
// happened-before relationship between the two streams. Our EVM substrate
// stamps both with one global sequence counter, so extraction is a
// sequence-ordered merge.
package trace

import (
	"fmt"
	"slices"

	"leishen/internal/evm"
	"leishen/internal/types"
)

// TokenResolver maps token contract addresses to metadata; the token
// registry implements it.
type TokenResolver interface {
	Resolve(addr types.Address) (types.Token, bool)
}

// Extractor converts receipts into account-level transfer lists.
type Extractor struct {
	// Tokens resolves ERC20 metadata for Transfer logs.
	Tokens TokenResolver
}

// NewExtractor builds an extractor over a token resolver.
func NewExtractor(tokens TokenResolver) *Extractor {
	return &Extractor{Tokens: tokens}
}

// Extract returns the transaction's asset transfers in happened-before
// order: T_i = (sender, receiver, amount, token). Failed transactions have
// no committed transfers.
func (e *Extractor) Extract(r *evm.Receipt) []types.Transfer {
	if r == nil || !r.Success {
		return nil
	}
	return e.ExtractInto(make([]types.Transfer, 0, len(r.Logs)+len(r.InternalTxs)), r)
}

// ExtractInto appends the transaction's transfers to dst in
// happened-before order and returns the grown slice — the
// reuse-a-scratch-buffer form of Extract (pass dst[:0] to recycle a
// buffer). Only the appended tail is sorted; existing dst entries are
// left untouched.
func (e *Extractor) ExtractInto(dst []types.Transfer, r *evm.Receipt) []types.Transfer {
	if r == nil || !r.Success {
		return dst
	}
	start := len(dst)
	transfers := slices.Grow(dst, len(r.Logs)+len(r.InternalTxs))

	// Ether transfers from internal transactions.
	for _, it := range r.InternalTxs {
		if it.Value.IsZero() {
			continue
		}
		transfers = append(transfers, types.Transfer{
			Seq:      it.Seq,
			Sender:   it.From,
			Receiver: it.To,
			Amount:   it.Value,
			Token:    types.ETH,
		})
	}
	// ERC20 transfers from event logs.
	for _, lg := range r.Logs {
		if lg.Event != "Transfer" || len(lg.Addrs) != 2 || len(lg.Amounts) != 1 {
			continue
		}
		tok, ok := e.Tokens.Resolve(lg.Address)
		if !ok {
			// Unknown token contracts still transfer value; synthesize
			// metadata so the transfer is not lost.
			tok = types.Token{
				Address:  lg.Address,
				Symbol:   fmt.Sprintf("UNK-%s", lg.Address.Short()),
				Decimals: 18,
			}
		}
		transfers = append(transfers, types.Transfer{
			Seq:      lg.Seq,
			Sender:   lg.Addrs[0],
			Receiver: lg.Addrs[1],
			Amount:   lg.Amounts[0],
			Token:    tok,
		})
	}
	// The substrate's sequence counter is unique per transaction, so any
	// comparison sort yields the same order. SortFunc avoids sort.Slice's
	// per-call interface allocations.
	slices.SortFunc(transfers[start:], func(a, b types.Transfer) int {
		switch {
		case a.Seq < b.Seq:
			return -1
		case a.Seq > b.Seq:
			return 1
		default:
			return 0
		}
	})
	return transfers
}
