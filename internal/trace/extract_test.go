package trace

import (
	"strings"
	"testing"

	"leishen/internal/evm"
	"leishen/internal/types"
	"leishen/internal/uint256"
)

type staticResolver map[types.Address]types.Token

func (r staticResolver) Resolve(a types.Address) (types.Token, bool) {
	t, ok := r[a]
	return t, ok
}

var (
	alice   = types.Address{1}
	bob     = types.Address{2}
	tokAddr = types.Address{9}
	tok     = types.Token{Address: tokAddr, Symbol: "TKN", Decimals: 18}
)

func TestExtractMergesStreamsBySeq(t *testing.T) {
	r := &evm.Receipt{
		Success: true,
		InternalTxs: []evm.InternalTx{
			{Seq: 0, From: alice, To: bob, Method: "pay", Value: uint256.FromUint64(100)},
			{Seq: 4, From: bob, To: alice, Method: "", Value: uint256.FromUint64(40)},
			{Seq: 5, From: bob, To: alice, Method: "noop"}, // zero value: skipped
		},
		Logs: []evm.Log{
			{Seq: 2, Address: tokAddr, Event: "Transfer",
				Addrs: []types.Address{alice, bob}, Amounts: []uint256.Int{uint256.FromUint64(7)}},
			{Seq: 3, Address: tokAddr, Event: "Approval",
				Addrs: []types.Address{alice, bob}, Amounts: []uint256.Int{uint256.FromUint64(1)}},
		},
	}
	ex := NewExtractor(staticResolver{tokAddr: tok})
	got := ex.Extract(r)
	if len(got) != 3 {
		t.Fatalf("transfers = %v", got)
	}
	// Ordered by seq: ETH(0), TKN(2), ETH(4).
	if !got[0].Token.IsETH() || got[0].Seq != 0 || got[0].Amount.Uint64() != 100 {
		t.Errorf("t0 = %+v", got[0])
	}
	if got[1].Token.Symbol != "TKN" || got[1].Seq != 2 {
		t.Errorf("t1 = %+v", got[1])
	}
	if !got[2].Token.IsETH() || got[2].Seq != 4 {
		t.Errorf("t2 = %+v", got[2])
	}
}

func TestExtractUnknownTokenSynthesized(t *testing.T) {
	r := &evm.Receipt{
		Success: true,
		Logs: []evm.Log{
			{Seq: 0, Address: types.Address{0x42}, Event: "Transfer",
				Addrs: []types.Address{alice, bob}, Amounts: []uint256.Int{uint256.FromUint64(5)}},
		},
	}
	got := NewExtractor(staticResolver{}).Extract(r)
	if len(got) != 1 {
		t.Fatalf("transfers = %v", got)
	}
	if !strings.HasPrefix(got[0].Token.Symbol, "UNK-") {
		t.Errorf("symbol = %s", got[0].Token.Symbol)
	}
}

func TestExtractFailedAndNil(t *testing.T) {
	ex := NewExtractor(staticResolver{})
	if got := ex.Extract(nil); got != nil {
		t.Error("nil receipt")
	}
	if got := ex.Extract(&evm.Receipt{Success: false}); got != nil {
		t.Error("failed receipt")
	}
}

func TestExtractMalformedLogsSkipped(t *testing.T) {
	r := &evm.Receipt{
		Success: true,
		Logs: []evm.Log{
			{Seq: 0, Address: tokAddr, Event: "Transfer", Addrs: []types.Address{alice}},      // 1 addr
			{Seq: 1, Address: tokAddr, Event: "Transfer", Addrs: []types.Address{alice, bob}}, // no amount
			{Seq: 2, Address: tokAddr, Event: "Swap", Addrs: []types.Address{alice, bob}},     // not Transfer
		},
	}
	if got := NewExtractor(staticResolver{tokAddr: tok}).Extract(r); len(got) != 0 {
		t.Errorf("transfers = %v", got)
	}
}
