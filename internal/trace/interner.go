package trace

import (
	"fmt"
	"slices"
	"sync"

	"leishen/internal/evm"
	"leishen/internal/types"
)

// Interner issues scan-lifetime integer ids for token identities.
//
// Token identity in the pipeline is the contract address (the zero
// address is native ETH), so the interner is an address → id table
// seeded with ETH at id 0 and extended lazily as contracts appear in
// logs. Unknown contracts get their UNK-synthesized metadata exactly
// once, here, instead of once per transfer; resolution returns the same
// Token value the string pipeline would have synthesized, so reports
// stay byte-identical. An Interner is safe for concurrent use: lookups
// are lock-free sync.Map loads, issuance serializes on a mutex.
type Interner struct {
	under TokenResolver
	mu    sync.Mutex
	next  uint32
	ids   sync.Map // types.Address -> types.TokenID
	toks  sync.Map // types.TokenID -> types.Token
}

// NewInterner builds an interner over a token resolver.
func NewInterner(under TokenResolver) *Interner {
	in := &Interner{under: under, next: uint32(types.ETHTokenID) + 1}
	in.toks.Store(types.ETHTokenID, types.ETH)
	return in
}

// IDOf returns the id of the token at addr, issuing one on first sight.
// The zero address is native ETH.
func (in *Interner) IDOf(addr types.Address) types.TokenID {
	if addr.IsZero() {
		return types.ETHTokenID
	}
	if id, ok := in.ids.Load(addr); ok {
		return id.(types.TokenID)
	}
	return in.intern(addr)
}

func (in *Interner) intern(addr types.Address) types.TokenID {
	in.mu.Lock()
	defer in.mu.Unlock()
	if id, ok := in.ids.Load(addr); ok {
		return id.(types.TokenID)
	}
	tok, ok := in.under.Resolve(addr)
	if !ok {
		// Unknown token contracts still transfer value; synthesize
		// metadata (once per contract) so the transfer is not lost.
		tok = types.Token{
			Address:  addr,
			Symbol:   fmt.Sprintf("UNK-%s", addr.Short()),
			Decimals: 18,
		}
	}
	id := types.TokenID(in.next)
	in.next++
	in.toks.Store(id, tok)
	in.ids.Store(addr, id)
	return id
}

// Token returns the Token value behind an issued id. Resolving an id
// that was never issued returns the zero Token.
func (in *Interner) Token(id types.TokenID) types.Token {
	if tok, ok := in.toks.Load(id); ok {
		return tok.(types.Token)
	}
	return types.Token{}
}

// ExtractInterned appends the transaction's transfers to dst in
// happened-before order as interned tuples — the hot-path counterpart
// of ExtractInto. The substrate records internal transactions and logs
// each in ascending sequence order, so the two streams merge with two
// pointers instead of a sort; a defensive sortedness check falls back
// to the sort if a receipt ever violates that (the sequence counter is
// unique per transaction, so any comparison sort yields one order).
func (e *Extractor) ExtractInterned(dst []types.ITransfer, in *Interner, r *evm.Receipt) []types.ITransfer {
	if r == nil || !r.Success {
		return dst
	}
	start := len(dst)
	out := slices.Grow(dst, len(r.Logs)+len(r.InternalTxs))
	its, lgs := r.InternalTxs, r.Logs
	i, j := 0, 0
	for {
		// Skip entries that do not move assets: zero-value internal
		// transactions and non-Transfer logs.
		for i < len(its) && its[i].Value.IsZero() {
			i++
		}
		for j < len(lgs) && !isERC20Transfer(&lgs[j]) {
			j++
		}
		if i >= len(its) && j >= len(lgs) {
			break
		}
		if j >= len(lgs) || (i < len(its) && its[i].Seq < lgs[j].Seq) {
			it := &its[i]
			out = append(out, types.ITransfer{
				Seq:      it.Seq,
				Sender:   it.From,
				Receiver: it.To,
				Amount:   it.Value,
				Token:    types.ETHTokenID,
			})
			i++
		} else {
			lg := &lgs[j]
			out = append(out, types.ITransfer{
				Seq:      lg.Seq,
				Sender:   lg.Addrs[0],
				Receiver: lg.Addrs[1],
				Amount:   lg.Amounts[0],
				Token:    in.IDOf(lg.Address),
			})
			j++
		}
	}
	tail := out[start:]
	for k := 1; k < len(tail); k++ {
		if tail[k].Seq < tail[k-1].Seq {
			slices.SortFunc(tail, func(a, b types.ITransfer) int {
				switch {
				case a.Seq < b.Seq:
					return -1
				case a.Seq > b.Seq:
					return 1
				default:
					return 0
				}
			})
			break
		}
	}
	return out
}

func isERC20Transfer(lg *evm.Log) bool {
	return lg.Event == "Transfer" && len(lg.Addrs) == 2 && len(lg.Amounts) == 1
}
