// Package types defines the domain vocabulary shared by every layer of the
// reproduction: addresses, hashes, tokens, account-level and
// application-level asset transfers, and trades.
//
// The transfer and trade tuples mirror the paper's notation exactly:
//
//   - account-level transfer  T_i    = (sender, receiver, amount, token)   (§V-A)
//   - tagged transfer         tagT_i = (tag_sender, tag_receiver, amount, token) (§V-B1)
//   - trade                          = (buyer, seller, amountSell, tokenSell,
//     amountBuy, tokenBuy) (§IV-B)
package types

import (
	"encoding/binary"
	"encoding/hex"
	"fmt"
	"hash/fnv"

	"leishen/internal/uint256"
)

// Address is a 160-bit Ethereum account address.
type Address [20]byte

// ZeroAddress is the all-zero address. Token mints transfer from it and
// burns transfer to it; the paper calls it the BlackHole address.
var ZeroAddress Address

// BlackHole is the paper's name for the zero address.
var BlackHole = ZeroAddress

// AddressFromHex parses a 0x-prefixed or bare 40-hex-digit address.
func AddressFromHex(s string) (Address, error) {
	if len(s) >= 2 && s[0] == '0' && (s[1] == 'x' || s[1] == 'X') {
		s = s[2:]
	}
	var a Address
	if len(s) != 40 {
		return a, fmt.Errorf("address %q: want 40 hex digits, got %d", s, len(s))
	}
	if _, err := hex.Decode(a[:], []byte(s)); err != nil {
		return a, fmt.Errorf("address %q: %w", s, err)
	}
	return a, nil
}

// MustAddressFromHex is AddressFromHex, panicking on error. For constants.
func MustAddressFromHex(s string) Address {
	a, err := AddressFromHex(s)
	if err != nil {
		panic(err)
	}
	return a
}

// DeriveAddress deterministically derives a fresh address from a creator
// address and nonce, standing in for Ethereum's RLP+Keccak CREATE rule.
// The derivation only needs to be collision-resistant within a simulation;
// the double-pass hash gives the leading bytes enough avalanche that the
// paper-style Short() rendering stays readable.
func DeriveAddress(creator Address, nonce uint64) Address {
	var nb [8]byte
	binary.BigEndian.PutUint64(nb[:], nonce)
	h := HashFromData([]byte("create"), creator[:], nb[:])
	var a Address
	// Lead with the double-hashed upper half so the Short() prefix is
	// well distributed even for sequential nonces.
	copy(a[:16], h[16:])
	copy(a[16:], h[:4])
	return a
}

// String renders the address as 0x-prefixed hex.
func (a Address) String() string { return "0x" + hex.EncodeToString(a[:]) }

// Short renders the first 16 bits of the address, the compact form the
// paper uses in its figures (e.g. "0xb017").
func (a Address) Short() string { return "0x" + hex.EncodeToString(a[:2]) }

// IsZero reports whether a is the zero (BlackHole) address.
func (a Address) IsZero() bool { return a == ZeroAddress }

// Hash is a 256-bit identifier for transactions and blocks.
type Hash [32]byte

// HashFromData deterministically hashes arbitrary byte slices into a Hash.
func HashFromData(parts ...[]byte) Hash {
	h := fnv.New128a()
	for _, p := range parts {
		var lb [8]byte
		binary.BigEndian.PutUint64(lb[:], uint64(len(p)))
		h.Write(lb[:])
		h.Write(p)
	}
	sum := h.Sum(nil)
	var out Hash
	copy(out[:16], sum)
	// Second round for the upper half so the full 32 bytes carry entropy.
	h2 := fnv.New128()
	h2.Write(sum)
	copy(out[16:], h2.Sum(nil))
	return out
}

// String renders the hash as 0x-prefixed hex.
func (h Hash) String() string { return "0x" + hex.EncodeToString(h[:]) }

// Short renders the first 4 bytes for logs.
func (h Hash) Short() string { return "0x" + hex.EncodeToString(h[:4]) }

// IsZero reports whether h is the all-zero hash.
func (h Hash) IsZero() bool { return h == Hash{} }

// Token identifies a crypto asset. ETH is the native asset; every ERC20
// token is identified by its contract address.
type Token struct {
	// Address is the token contract address; the zero address denotes
	// native ETH.
	Address Address
	// Symbol is a human-readable ticker such as "WBTC". Symbols are for
	// reporting only; identity is the address.
	Symbol string
	// Decimals is the number of base-unit digits per human unit.
	Decimals uint8
}

// ETH is the native Ether pseudo-token.
var ETH = Token{Symbol: "ETH", Decimals: 18}

// IsETH reports whether the token is native Ether.
func (t Token) IsETH() bool { return t.Address.IsZero() }

// Units parses a human-readable amount of this token into base units,
// panicking on malformed input. For scenario constants.
func (t Token) Units(s string) uint256.Int {
	return uint256.MustFromUnits(s, uint(t.Decimals))
}

// Format renders a base-unit amount in human units with the symbol.
func (t Token) Format(amount uint256.Int) string {
	return amount.ToUnits(uint(t.Decimals)) + " " + t.Symbol
}

// Transfer is an account-level asset transfer: the tuple
// T_i = (sender, receiver, amount, token) from §V-A, plus the
// happened-before sequence number the modified client records.
type Transfer struct {
	// Seq is the global happened-before position of this transfer within
	// its transaction, unifying internal (ETH) transfers and ERC20 logs.
	Seq uint64
	// Sender is the account the asset left.
	Sender Address
	// Receiver is the account the asset arrived at.
	Receiver Address
	// Amount is the transferred quantity in base units.
	Amount uint256.Int
	// Token is the transferred asset.
	Token Token
}

// String renders the transfer for reports.
func (tr Transfer) String() string {
	return fmt.Sprintf("T%d: %s -> %s  %s", tr.Seq, tr.Sender.Short(), tr.Receiver.Short(), tr.Token.Format(tr.Amount))
}

// Tag identifies the DeFi application an account belongs to. Tags carry a
// Kind so that "tagged with application X" and "tagged with root-creator
// address" (the paper's fallback for unlabeled trees) stay distinguishable.
type Tag struct {
	// Kind classifies how the tag was assigned.
	Kind TagKind
	// Name is the application name (KindApp), the root creator address in
	// hex (KindRoot), or empty (KindNone).
	Name string
}

// TagKind classifies a tag.
type TagKind int

// Tag kinds. Start at 1 so the zero Tag is recognizably invalid.
const (
	// TagNone marks an account that could not be tagged: its creation tree
	// carries conflicting application labels.
	TagNone TagKind = iota + 1
	// TagApp marks an account tagged with a DeFi application name.
	TagApp
	// TagRoot marks an account in a label-free creation tree, tagged with
	// the tree root's address.
	TagRoot
)

// AppTag builds an application tag.
func AppTag(name string) Tag { return Tag{Kind: TagApp, Name: name} }

// RootTag builds a root-address fallback tag.
func RootTag(root Address) Tag { return Tag{Kind: TagRoot, Name: root.String()} }

// NoTag is the untaggable marker.
func NoTag() Tag { return Tag{Kind: TagNone} }

// IsApp reports whether the tag names a DeFi application.
func (g Tag) IsApp() bool { return g.Kind == TagApp }

// IsNone reports whether the account could not be tagged.
func (g Tag) IsNone() bool { return g.Kind == TagNone }

// String renders the tag.
func (g Tag) String() string {
	switch g.Kind {
	case TagApp:
		return g.Name
	case TagRoot:
		return "root:" + g.Name
	default:
		return "<untagged>"
	}
}

// TaggedTransfer is the tuple tagT_i = (tag_sender, tag_receiver, amount,
// token) from §V-B1. Sender and Receiver retain the raw addresses so later
// stages can still distinguish distinct accounts sharing a tag.
type TaggedTransfer struct {
	// Seq preserves the happened-before order from the account level.
	Seq uint64
	// Sender / Receiver are the raw account addresses.
	Sender, Receiver Address
	// SenderTag / ReceiverTag are the application tags.
	SenderTag, ReceiverTag Tag
	// Amount is the transferred quantity in base units.
	Amount uint256.Int
	// Token is the transferred asset.
	Token Token
}

// String renders the tagged transfer for reports.
func (tt TaggedTransfer) String() string {
	return fmt.Sprintf("tagT%d: %s -> %s  %s", tt.Seq, tt.SenderTag, tt.ReceiverTag, tt.Token.Format(tt.Amount))
}

// AppTransfer is an application-level asset transfer appT_i after
// simplification (§V-B2): parties are tags, not addresses.
type AppTransfer struct {
	// Seq preserves happened-before order.
	Seq uint64
	// Sender / Receiver are application tags. A transfer from the mint
	// BlackHole keeps the zero-address semantics via the FromBlackHole /
	// ToBlackHole flags rather than a special tag.
	Sender, Receiver Tag
	// FromBlackHole marks a mint (tokens created from the zero address).
	FromBlackHole bool
	// ToBlackHole marks a burn (tokens destroyed to the zero address).
	ToBlackHole bool
	// Amount is the transferred quantity in base units.
	Amount uint256.Int
	// Token is the transferred asset.
	Token Token
}

// String renders the app-level transfer for reports.
func (at AppTransfer) String() string {
	from, to := at.Sender.String(), at.Receiver.String()
	if at.FromBlackHole {
		from = "BlackHole"
	}
	if at.ToBlackHole {
		to = "BlackHole"
	}
	return fmt.Sprintf("appT%d: %s -> %s  %s", at.Seq, from, to, at.Token.Format(at.Amount))
}

// TradeKind classifies the three key trade actions of paper Table III.
type TradeKind int

// Trade kinds.
const (
	// TradeSwap is an asset-for-asset exchange.
	TradeSwap TradeKind = iota + 1
	// TradeMint deposits assets to mint new (LP) tokens.
	TradeMint
	// TradeRemove burns (LP) tokens to redeem underlying assets.
	TradeRemove
)

// String names the trade kind.
func (k TradeKind) String() string {
	switch k {
	case TradeSwap:
		return "swap"
	case TradeMint:
		return "mint-liquidity"
	case TradeRemove:
		return "remove-liquidity"
	default:
		return fmt.Sprintf("TradeKind(%d)", int(k))
	}
}

// Trade is the paper's trade tuple: a buyer exchanges AmountSell of
// TokenSell for AmountBuy of TokenBuy with a seller. For mint/remove
// trades the "seller" is the application that issued or redeemed the
// liquidity tokens. SecondaryBuy captures the optional third transfer of
// Table III's three-transfer conditions (a second asset received).
type Trade struct {
	// Kind is the trade action class.
	Kind TradeKind
	// Buyer initiated the trade (gave TokenSell, received TokenBuy).
	Buyer Tag
	// Seller is the counterparty application.
	Seller Tag
	// AmountSell / TokenSell is what the buyer paid.
	AmountSell uint256.Int
	TokenSell  Token
	// AmountBuy / TokenBuy is what the buyer received.
	AmountBuy uint256.Int
	TokenBuy  Token
	// SecondaryBuy holds an optional second received asset (three-transfer
	// trade forms in Table III); nil otherwise.
	SecondaryBuy *TradeLeg
	// SecondarySell holds an optional second paid asset; nil otherwise.
	SecondarySell *TradeLeg
	// Seq is the happened-before position of the trade's first transfer.
	Seq uint64
}

// TradeLeg is one additional asset movement attached to a trade.
type TradeLeg struct {
	// Amount in base units.
	Amount uint256.Int
	// Token is the asset.
	Token Token
}

// Rate returns the price paid per unit bought, as the float ratio
// AmountSell/AmountBuy, for reporting and volatility computation.
func (t Trade) Rate() float64 { return t.AmountSell.Rat(t.AmountBuy) }

// InverseRate returns AmountBuy/AmountSell.
func (t Trade) InverseRate() float64 { return t.AmountBuy.Rat(t.AmountSell) }

// String renders the trade for reports.
func (t Trade) String() string {
	s := fmt.Sprintf("%s: %s pays %s for %s to %s",
		t.Kind, t.Buyer, t.TokenSell.Format(t.AmountSell), t.TokenBuy.Format(t.AmountBuy), t.Seller)
	if t.SecondaryBuy != nil {
		s += fmt.Sprintf(" (+%s)", t.SecondaryBuy.Token.Format(t.SecondaryBuy.Amount))
	}
	return s
}

// PairKey canonically identifies an unordered token pair for volatility
// bookkeeping, e.g. "ETH-WBTC".
func PairKey(a, b Token) string {
	x, y := a.Symbol, b.Symbol
	if x > y {
		x, y = y, x
	}
	return x + "-" + y
}

// MarshalJSON renders the address as its 0x-hex form.
func (a Address) MarshalJSON() ([]byte, error) {
	return []byte(`"` + a.String() + `"`), nil
}

// UnmarshalJSON parses a 0x-hex address string.
func (a *Address) UnmarshalJSON(data []byte) error {
	s := string(data)
	if len(s) >= 2 && s[0] == '"' && s[len(s)-1] == '"' {
		s = s[1 : len(s)-1]
	}
	v, err := AddressFromHex(s)
	if err != nil {
		return err
	}
	*a = v
	return nil
}

// MarshalJSON renders the hash as its 0x-hex form.
func (h Hash) MarshalJSON() ([]byte, error) {
	return []byte(`"` + h.String() + `"`), nil
}

// UnmarshalJSON parses a 0x-hex hash string.
func (h *Hash) UnmarshalJSON(data []byte) error {
	s := string(data)
	if len(s) >= 2 && s[0] == '"' && s[len(s)-1] == '"' {
		s = s[1 : len(s)-1]
	}
	v, err := HashFromHex(s)
	if err != nil {
		return err
	}
	*h = v
	return nil
}

// MarshalJSON renders the tag as its display string.
func (g Tag) MarshalJSON() ([]byte, error) {
	return []byte(`"` + g.String() + `"`), nil
}

// HashFromHex parses a 0x-prefixed or bare 64-hex-digit hash.
func HashFromHex(s string) (Hash, error) {
	if len(s) >= 2 && s[0] == '0' && (s[1] == 'x' || s[1] == 'X') {
		s = s[2:]
	}
	var h Hash
	if len(s) != 64 {
		return h, fmt.Errorf("hash %q: want 64 hex digits, got %d", s, len(s))
	}
	if _, err := hex.Decode(h[:], []byte(s)); err != nil {
		return h, fmt.Errorf("hash %q: %w", s, err)
	}
	return h, nil
}
