package types

import "leishen/internal/uint256"

// Interned pipeline vocabulary.
//
// The detection hot path runs extract → tag → simplify → trades → match
// thousands of times per second, and profiling shows the string-bearing
// tuples (Tag.Name, Token.Symbol) dominate its cost twice over: every
// comparison is a memeq over string bytes, and every stage-to-stage copy
// drags pointer-dense structs through the GC's scan phase. The interned
// twins below replace each string-valued identity with a small integer
// id issued by a scan-lifetime intern table (tags by the tagger, tokens
// by the trace interner). Id equality is exactly struct equality —
// tables issue one id per distinct value — so the pipeline compares and
// hashes ints, and resolves ids back to the full structs only when a
// report is materialized. Resolution reproduces the exact Tag/Token
// values the string pipeline would have carried, which is what keeps
// report output byte-identical.

// TagID is an interned application tag. The tagger issues one id per
// distinct Tag value, so id equality is Tag equality.
type TagID uint32

// NoTagID is the id of the untaggable marker (NoTag). All untaggable
// accounts share the one NoTag value, hence one id, so the "untagged
// accounts never match anything" rules translate to id comparisons
// against this constant.
const NoTagID TagID = 0

// InvalidTagID is a sentinel that the tagger never issues; comparisons
// against it are always false. Rule configuration uses it to disable a
// tag-directed rule (e.g. "no WETH tag exists in this snapshot").
const InvalidTagID TagID = ^TagID(0)

// IsNone reports whether the tag is the untaggable marker, mirroring
// Tag.IsNone.
func (id TagID) IsNone() bool { return id == NoTagID }

// TokenID is an interned token identity. Token identity throughout the
// pipeline is the contract address (Symbol and Decimals are metadata),
// and the interner issues one id per distinct address, so id equality
// is exactly the pipeline's sameToken predicate.
type TokenID uint32

// ETHTokenID is the id of native Ether. The zero address denotes ETH
// (Token.IsETH ⇔ Address.IsZero), so the interner reserves id 0 for it.
const ETHTokenID TokenID = 0

// InvalidTokenID is a sentinel the interner never issues, used to
// disable token-directed rules (e.g. WETH unification switched off).
const InvalidTokenID TokenID = ^TokenID(0)

// IsETH reports whether the id denotes native Ether, mirroring
// Token.IsETH.
func (id TokenID) IsETH() bool { return id == ETHTokenID }

// ITransfer is the interned transfer tuple shared by every pipeline
// stage. Extraction fills Seq/Sender/Receiver/Amount/Token, tagging
// fills SenderTag/ReceiverTag in place, and simplification consumes the
// tagged form and emits the application-level form (tags + BlackHole
// flags; the raw addresses of merged entries are no longer meaningful).
// One pointer-free struct across stages means the hot path never copies
// between per-stage tuple shapes and the GC never scans the buffers.
type ITransfer struct {
	// Seq is the global happened-before position within the transaction.
	Seq uint64
	// Sender / Receiver are the raw account addresses (account level).
	Sender, Receiver Address
	// SenderTag / ReceiverTag are the interned application tags.
	SenderTag, ReceiverTag TagID
	// FromBlackHole / ToBlackHole mark mints and burns (app level).
	FromBlackHole, ToBlackHole bool
	// Token is the interned asset.
	Token TokenID
	// Amount is the transferred quantity in base units.
	Amount uint256.Int
}

// ILeg is one additional asset movement attached to an interned trade.
type ILeg struct {
	Amount uint256.Int
	Token  TokenID
}

// Secondary-leg kinds for ITrade. The trade forms of Table III attach
// at most one extra leg, so the interned trade inlines a single ILeg
// plus a discriminator instead of the two nullable pointers Trade uses.
const (
	// SecondaryNone marks a two-transfer trade (no extra leg).
	SecondaryNone uint8 = iota
	// SecondaryIsBuy marks the leg as a second received asset.
	SecondaryIsBuy
	// SecondaryIsSell marks the leg as a second paid asset.
	SecondaryIsSell
)

// ITrade is the interned trade tuple. Pattern matching compares only
// ids and amounts; the secondary leg is carried for report
// materialization.
type ITrade struct {
	// Kind is the trade action class.
	Kind TradeKind
	// Buyer / Seller are the interned party tags.
	Buyer, Seller TagID
	// AmountSell / TokenSell is what the buyer paid.
	AmountSell uint256.Int
	TokenSell  TokenID
	// AmountBuy / TokenBuy is what the buyer received.
	AmountBuy uint256.Int
	TokenBuy  TokenID
	// Secondary is the optional extra leg; SecondaryKind says which side
	// it belongs to (SecondaryNone means absent).
	Secondary     ILeg
	SecondaryKind uint8
	// Seq is the happened-before position of the trade's first transfer.
	Seq uint64
}

// Rate returns the price paid per unit bought (AmountSell/AmountBuy),
// the same float Trade.Rate computes, so interned volatility math
// reproduces the report numbers bit for bit.
func (t ITrade) Rate() float64 { return t.AmountSell.Rat(t.AmountBuy) }

// InverseRate returns AmountBuy/AmountSell.
func (t ITrade) InverseRate() float64 { return t.AmountBuy.Rat(t.AmountSell) }
