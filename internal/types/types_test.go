package types

import (
	"strings"
	"testing"
	"testing/quick"

	"leishen/internal/uint256"
)

func TestAddressHexRoundTrip(t *testing.T) {
	in := "0x00112233445566778899aabbccddeeff00112233"
	a, err := AddressFromHex(in)
	if err != nil {
		t.Fatal(err)
	}
	if a.String() != in {
		t.Errorf("round trip: %s", a)
	}
	if a.Short() != "0x0011" {
		t.Errorf("short = %s", a.Short())
	}
	// Bare form.
	if b := MustAddressFromHex(in[2:]); b != a {
		t.Error("bare hex differs")
	}
}

func TestAddressHexErrors(t *testing.T) {
	for _, s := range []string{"", "0x1234", "0x" + strings.Repeat("zz", 20)} {
		if _, err := AddressFromHex(s); err == nil {
			t.Errorf("AddressFromHex(%q) accepted", s)
		}
	}
	defer func() {
		if recover() == nil {
			t.Error("MustAddressFromHex did not panic")
		}
	}()
	MustAddressFromHex("xx")
}

func TestZeroAddress(t *testing.T) {
	if !ZeroAddress.IsZero() || !BlackHole.IsZero() {
		t.Error("zero address not zero")
	}
	if (Address{1}).IsZero() {
		t.Error("nonzero address is zero")
	}
}

func TestHashFromDataDeterministicAndDistinct(t *testing.T) {
	h1 := HashFromData([]byte("a"), []byte("b"))
	h2 := HashFromData([]byte("a"), []byte("b"))
	if h1 != h2 {
		t.Error("not deterministic")
	}
	// Length-prefixing prevents concatenation collisions.
	h3 := HashFromData([]byte("ab"), []byte(""))
	if h1 == h3 {
		t.Error("concatenation collision")
	}
	if h1.Short() == "" || h1.String() == "" {
		t.Error("render empty")
	}
}

func TestTokenHelpers(t *testing.T) {
	if !ETH.IsETH() {
		t.Error("ETH not ETH")
	}
	usdc := Token{Address: Address{1}, Symbol: "USDC", Decimals: 6}
	if usdc.IsETH() {
		t.Error("USDC is ETH")
	}
	if got := usdc.Units("1.5"); got.Uint64() != 1_500_000 {
		t.Errorf("Units = %s", got)
	}
	if got := usdc.Format(uint256.FromUint64(2_500_000)); got != "2.5 USDC" {
		t.Errorf("Format = %s", got)
	}
}

func TestTags(t *testing.T) {
	app := AppTag("Uniswap")
	if !app.IsApp() || app.IsNone() || app.String() != "Uniswap" {
		t.Errorf("app tag = %+v", app)
	}
	root := RootTag(Address{7})
	if root.IsApp() || root.IsNone() || !strings.HasPrefix(root.String(), "root:") {
		t.Errorf("root tag = %+v", root)
	}
	none := NoTag()
	if !none.IsNone() || none.String() != "<untagged>" {
		t.Errorf("no tag = %+v", none)
	}
	if app == root || root == none {
		t.Error("tag collisions")
	}
	// Distinct roots are distinct tags.
	if RootTag(Address{1}) == RootTag(Address{2}) {
		t.Error("root tags collide")
	}
}

func TestTradeRates(t *testing.T) {
	tr := Trade{
		AmountSell: uint256.FromUint64(300),
		AmountBuy:  uint256.FromUint64(100),
	}
	if tr.Rate() != 3 {
		t.Errorf("Rate = %f", tr.Rate())
	}
	if tr.InverseRate()-1.0/3.0 > 1e-12 {
		t.Errorf("InverseRate = %f", tr.InverseRate())
	}
}

func TestTradeKindStrings(t *testing.T) {
	if TradeSwap.String() != "swap" || TradeMint.String() != "mint-liquidity" || TradeRemove.String() != "remove-liquidity" {
		t.Error("trade kind names")
	}
	if TradeKind(9).String() == "" {
		t.Error("unknown kind")
	}
}

func TestPairKeyCanonical(t *testing.T) {
	a := Token{Symbol: "WBTC"}
	b := Token{Symbol: "ETH"}
	if PairKey(a, b) != "ETH-WBTC" || PairKey(b, a) != "ETH-WBTC" {
		t.Errorf("PairKey = %s / %s", PairKey(a, b), PairKey(b, a))
	}
}

func TestDeriveAddressProperties(t *testing.T) {
	f := func(creator [20]byte, n1, n2 uint64) bool {
		c := Address(creator)
		a1 := DeriveAddress(c, n1)
		a2 := DeriveAddress(c, n2)
		if n1 == n2 {
			return a1 == a2
		}
		return a1 != a2
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestStringers(t *testing.T) {
	tr := Transfer{Seq: 1, Sender: Address{1}, Receiver: Address{2},
		Amount: uint256.FromUint64(5), Token: Token{Symbol: "X", Decimals: 0}}
	if !strings.Contains(tr.String(), "5 X") {
		t.Errorf("Transfer.String = %s", tr)
	}
	at := AppTransfer{Seq: 2, Sender: AppTag("A"), Receiver: AppTag("B"),
		Amount: uint256.FromUint64(5), Token: Token{Symbol: "X", Decimals: 0}}
	if !strings.Contains(at.String(), "A -> B") {
		t.Errorf("AppTransfer.String = %s", at)
	}
	mint := AppTransfer{FromBlackHole: true, Receiver: AppTag("A"),
		Amount: uint256.FromUint64(1), Token: Token{Symbol: "X", Decimals: 0}}
	if !strings.Contains(mint.String(), "BlackHole ->") {
		t.Errorf("mint render = %s", mint)
	}
	td := Trade{Kind: TradeSwap, Buyer: AppTag("A"), Seller: AppTag("B"),
		AmountSell: uint256.FromUint64(1), TokenSell: Token{Symbol: "X", Decimals: 0},
		AmountBuy: uint256.FromUint64(2), TokenBuy: Token{Symbol: "Y", Decimals: 0},
		SecondaryBuy: &TradeLeg{Amount: uint256.FromUint64(3), Token: Token{Symbol: "Z", Decimals: 0}}}
	if !strings.Contains(td.String(), "swap") || !strings.Contains(td.String(), "+3 Z") {
		t.Errorf("Trade.String = %s", td)
	}
}

func TestJSONForms(t *testing.T) {
	a := MustAddressFromHex("0x00112233445566778899aabbccddeeff00112233")
	raw, err := a.MarshalJSON()
	if err != nil || string(raw) != `"0x00112233445566778899aabbccddeeff00112233"` {
		t.Errorf("address json = %s err=%v", raw, err)
	}
	var back Address
	if err := back.UnmarshalJSON(raw); err != nil || back != a {
		t.Errorf("address round trip: %s err=%v", back, err)
	}
	if err := back.UnmarshalJSON([]byte(`"zz"`)); err == nil {
		t.Error("malformed address accepted")
	}
	h := HashFromData([]byte("x"))
	if raw, err := h.MarshalJSON(); err != nil || string(raw) != `"`+h.String()+`"` {
		t.Errorf("hash json = %s err=%v", raw, err)
	}
	if raw, err := AppTag("Uniswap").MarshalJSON(); err != nil || string(raw) != `"Uniswap"` {
		t.Errorf("tag json = %s err=%v", raw, err)
	}
}

func TestHashFromHex(t *testing.T) {
	h := HashFromData([]byte("y"))
	back, err := HashFromHex(h.String())
	if err != nil || back != h {
		t.Errorf("round trip: %v err=%v", back, err)
	}
	if _, err := HashFromHex("0x1234"); err == nil {
		t.Error("short hash accepted")
	}
	if _, err := HashFromHex("zz"); err == nil {
		t.Error("malformed hash accepted")
	}
}
