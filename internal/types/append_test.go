package types

import (
	"testing"

	"leishen/internal/uint256"
)

// TestAppendRenderers pins every append-form renderer to the bytes of
// its fmt/String reference over representative values — including the
// BlackHole substitutions and secondary trade legs.
func TestAppendRenderers(t *testing.T) {
	addr := Address{0xb0, 0x17, 0xaa, 0x01, 0x55, 0xee}
	hash := Hash{0xde, 0xad, 0xbe, 0xef, 0x99}
	if got := string(addr.AppendHex(nil)); got != addr.String() {
		t.Errorf("Address.AppendHex = %q, want %q", got, addr.String())
	}
	if got := string(addr.AppendShort(nil)); got != addr.Short() {
		t.Errorf("Address.AppendShort = %q, want %q", got, addr.Short())
	}
	if got := string(hash.AppendHex(nil)); got != hash.String() {
		t.Errorf("Hash.AppendHex = %q, want %q", got, hash.String())
	}
	if got := string(hash.AppendShort(nil)); got != hash.Short() {
		t.Errorf("Hash.AppendShort = %q, want %q", got, hash.Short())
	}

	tags := []Tag{NoTag(), AppTag("Uniswap"), RootTag(addr)}
	for _, tag := range tags {
		if got := string(tag.AppendString(nil)); got != tag.String() {
			t.Errorf("Tag.AppendString = %q, want %q", got, tag.String())
		}
	}

	usdc := Token{Address: addr, Symbol: "USDC", Decimals: 6}
	amounts := []uint256.Int{
		uint256.Zero(),
		uint256.FromUint64(1),
		uint256.FromUint64(1_234_567),
		uint256.FromUint64(1_000_000),
		uint256.MustFromDecimal("123456789123456789123456789123456789"),
	}
	for _, amt := range amounts {
		if got := string(usdc.AppendFormat(nil, amt)); got != usdc.Format(amt) {
			t.Errorf("Token.AppendFormat(%s) = %q, want %q", amt, got, usdc.Format(amt))
		}
	}

	eth := ETH
	at := AppTransfer{
		Seq:    17,
		Sender: AppTag("Harvest"), Receiver: RootTag(addr),
		Amount: uint256.FromUint64(42_000_001),
		Token:  usdc,
	}
	variants := []AppTransfer{at, at, at}
	variants[1].FromBlackHole = true
	variants[2].ToBlackHole = true
	variants[2].Token = eth
	for i, v := range variants {
		if got := string(v.AppendString(nil)); got != v.String() {
			t.Errorf("AppTransfer[%d].AppendString = %q, want %q", i, got, v.String())
		}
	}

	tr := Trade{
		Kind:  TradeSwap,
		Buyer: AppTag("Harvest"), Seller: AppTag("Curve"),
		AmountSell: uint256.FromUint64(500), TokenSell: usdc,
		AmountBuy: uint256.FromUint64(499), TokenBuy: eth,
		Seq: 3,
	}
	leg := TradeLeg{Amount: uint256.FromUint64(77), Token: usdc}
	withBuy, withSell := tr, tr
	withBuy.Kind = TradeRemove
	withBuy.SecondaryBuy = &leg
	withSell.Kind = TradeMint
	withSell.SecondarySell = &leg
	for i, v := range []Trade{tr, withBuy, withSell} {
		if got := string(v.AppendString(nil)); got != v.String() {
			t.Errorf("Trade[%d].AppendString = %q, want %q", i, got, v.String())
		}
	}

	// Append forms must extend, not clobber, an existing buffer.
	buf := append([]byte(nil), "prefix|"...)
	if got := string(tr.AppendString(buf)); got != "prefix|"+tr.String() {
		t.Errorf("AppendString with prefix = %q", got)
	}
}
