package types

import (
	"encoding/hex"
	"strconv"

	"leishen/internal/uint256"
)

// Append-form renderers. Each AppendX produces exactly the bytes of the
// corresponding String/Format method, but into a caller-owned buffer —
// the report Detail builder renders whole reports into one reused
// []byte without the per-fragment allocations of fmt. The String forms
// remain the reference; TestAppendRenderers pins byte equality.

// AppendHex appends the 0x-prefixed hex form of the address (String).
func (a Address) AppendHex(dst []byte) []byte {
	dst = append(dst, '0', 'x')
	return hex.AppendEncode(dst, a[:])
}

// AppendShort appends the compact form of the address (Short).
func (a Address) AppendShort(dst []byte) []byte {
	dst = append(dst, '0', 'x')
	return hex.AppendEncode(dst, a[:2])
}

// AppendHex appends the 0x-prefixed hex form of the hash (String).
func (h Hash) AppendHex(dst []byte) []byte {
	dst = append(dst, '0', 'x')
	return hex.AppendEncode(dst, h[:])
}

// AppendShort appends the compact form of the hash (Short).
func (h Hash) AppendShort(dst []byte) []byte {
	dst = append(dst, '0', 'x')
	return hex.AppendEncode(dst, h[:4])
}

// AppendString appends the tag's display form (String).
func (g Tag) AppendString(dst []byte) []byte {
	switch g.Kind {
	case TagApp:
		return append(dst, g.Name...)
	case TagRoot:
		dst = append(dst, "root:"...)
		return append(dst, g.Name...)
	default:
		return append(dst, "<untagged>"...)
	}
}

// AppendFormat appends a base-unit amount in human units with the
// symbol (Format).
func (t Token) AppendFormat(dst []byte, amount uint256.Int) []byte {
	dst = amount.AppendUnits(dst, uint(t.Decimals))
	dst = append(dst, ' ')
	return append(dst, t.Symbol...)
}

// AppendString appends the app-level transfer's report line (String).
func (at AppTransfer) AppendString(dst []byte) []byte {
	dst = append(dst, "appT"...)
	dst = strconv.AppendUint(dst, at.Seq, 10)
	dst = append(dst, ": "...)
	if at.FromBlackHole {
		dst = append(dst, "BlackHole"...)
	} else {
		dst = at.Sender.AppendString(dst)
	}
	dst = append(dst, " -> "...)
	if at.ToBlackHole {
		dst = append(dst, "BlackHole"...)
	} else {
		dst = at.Receiver.AppendString(dst)
	}
	dst = append(dst, ' ', ' ')
	return at.Token.AppendFormat(dst, at.Amount)
}

// AppendString appends the trade's report line (String).
func (t Trade) AppendString(dst []byte) []byte {
	dst = append(dst, t.Kind.String()...)
	dst = append(dst, ": "...)
	dst = t.Buyer.AppendString(dst)
	dst = append(dst, " pays "...)
	dst = t.TokenSell.AppendFormat(dst, t.AmountSell)
	dst = append(dst, " for "...)
	dst = t.TokenBuy.AppendFormat(dst, t.AmountBuy)
	dst = append(dst, " to "...)
	dst = t.Seller.AppendString(dst)
	if t.SecondaryBuy != nil {
		dst = append(dst, " (+"...)
		dst = t.SecondaryBuy.Token.AppendFormat(dst, t.SecondaryBuy.Amount)
		dst = append(dst, ')')
	}
	return dst
}
