// Pooled response assembly: the hot read endpoints build their complete
// body in a reusable buffer, then write it with an explicit
// Content-Length. Compared to json.NewEncoder(w) per request this
// removes the encoder allocation, the encoder's internal scratch
// growth, and chunked transfer encoding — the response is one
// header-complete write. Each pooled buffer carries a json.Encoder
// permanently wired to it, so dynamic payloads (/healthz, /batch) also
// encode without a per-request encoder.
package serve

import (
	"bytes"
	"encoding/json"
	"net/http"
	"strconv"
	"sync"

	"leishen/internal/metrics"
)

// Pool telemetry: gets vs. fresh allocations. The gap is the reuse the
// pool delivers; a gets≈allocs steady state means the pool is being
// defeated (oversized replies dropped, or GC pressure emptying it).
// Always-on zero-value atomics, named by Metrics via RegisterCounter.
var (
	respPoolGets   metrics.Counter
	respPoolAllocs metrics.Counter
)

// respBuf is one pooled response buffer plus its dedicated encoder.
type respBuf struct {
	buf bytes.Buffer
	enc *json.Encoder
}

// maxPooledRespBytes bounds what the pool retains: a buffer grown past
// this (one giant /batch reply) is dropped instead of pinned forever.
const maxPooledRespBytes = 1 << 20

var respPool = sync.Pool{New: func() any {
	respPoolAllocs.Inc()
	rb := &respBuf{}
	rb.enc = json.NewEncoder(&rb.buf)
	return rb
}}

func getRespBuf() *respBuf {
	respPoolGets.Inc()
	rb := respPool.Get().(*respBuf)
	rb.buf.Reset()
	return rb
}

func putRespBuf(rb *respBuf) {
	if rb.buf.Cap() > maxPooledRespBytes {
		return
	}
	respPool.Put(rb)
}

// writeBuf sends rb's contents as the complete response body —
// Content-Type, Content-Length, status, one write — and returns rb to
// the pool.
func writeBuf(w http.ResponseWriter, status int, rb *respBuf) {
	w.Header().Set("Content-Type", "application/json")
	w.Header().Set("Content-Length", strconv.Itoa(rb.buf.Len()))
	w.WriteHeader(status)
	//lint:allow errflow headers are already sent; a failed body write has no recovery path
	_, _ = w.Write(rb.buf.Bytes())
	putRespBuf(rb)
}

// writePooledJSON encodes v through a pooled buffer+encoder pair and
// writes it with Content-Length — writeJSON without the per-request
// encoder and with a sized response.
func writePooledJSON(w http.ResponseWriter, status int, v any) {
	rb := getRespBuf()
	if err := rb.enc.Encode(v); err != nil {
		putRespBuf(rb)
		writeError(w, http.StatusInternalServerError, err.Error())
		return
	}
	writeBuf(w, status, rb)
}
