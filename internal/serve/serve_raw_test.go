package serve

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"math/rand"
	"net/http"
	"net/http/httptest"
	"strconv"
	"sync"
	"testing"

	"leishen/internal/archive"
	"leishen/internal/types"
)

// rawTestArchive appends n randomized report records (varying flags,
// two-ish per block, interleaved checkpoints) and returns the open
// archive plus every stored hash in append order.
func rawTestArchive(t *testing.T, seed int64, n int) (*archive.Archive, []types.Hash) {
	t.Helper()
	arc, err := archive.Open(t.TempDir(), archive.Options{SegmentBytes: 1024})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { arc.Close() })
	rng := rand.New(rand.NewSource(seed))
	block := uint64(1)
	hashes := make([]types.Hash, 0, n)
	for i := 0; i < n; i++ {
		if rng.Intn(2) == 0 {
			block += uint64(rng.Intn(3))
		}
		flags := uint8(archive.FlagFlashLoan)
		if rng.Intn(3) == 0 {
			flags |= archive.FlagAttack
		}
		if rng.Intn(5) == 0 {
			flags |= archive.FlagSuppressed
		}
		rec := archive.Record{
			Kind:   archive.KindReport,
			TxHash: types.HashFromData([]byte("serveraw"), []byte{byte(seed), byte(i), byte(i >> 8)}),
			Block:  block,
			Flags:  flags,
			// Canonical JSON, as the follower's json.Marshal would store it.
			Report: []byte(fmt.Sprintf(`{"txHash":"%d","block":%d,"isAttack":%v}`, i, block, flags&archive.FlagAttack != 0)),
		}
		if err := arc.AppendReport(&rec); err != nil {
			t.Fatal(err)
		}
		hashes = append(hashes, rec.TxHash)
		if rng.Intn(7) == 0 {
			if err := arc.AppendCheckpoint(archive.Checkpoint{Block: block, Digest: rec.TxHash}); err != nil {
				t.Fatal(err)
			}
		}
	}
	return arc, hashes
}

// rawAndDecodedHandlers builds the two serving paths over one archive.
func rawAndDecodedHandlers(arc *archive.Archive) (raw, decoded http.Handler) {
	rs := New(nil, nil)
	rs.SetArchive(arc)
	ds := New(nil, nil)
	ds.DecodeServing = true
	ds.SetArchive(arc)
	return rs.Handler(), ds.Handler()
}

// get drives one request through a handler and returns the response.
func get(t *testing.T, h http.Handler, url string) *httptest.ResponseRecorder {
	t.Helper()
	rec := httptest.NewRecorder()
	h.ServeHTTP(rec, httptest.NewRequest("GET", url, nil))
	return rec
}

// TestRawServingMatchesDecoded is the serve-layer byte-identity pin: on
// randomized archives, the pooled raw path and the legacy decode path
// return the same status and byte-identical bodies for list queries,
// full pagination walks, point lookups and the error shapes.
func TestRawServingMatchesDecoded(t *testing.T) {
	for seed := int64(1); seed <= 3; seed++ {
		arc, hashes := rawTestArchive(t, seed, 60+int(seed)*17)
		rawH, decH := rawAndDecodedHandlers(arc)

		compare := func(url string) []byte {
			t.Helper()
			rr, dr := get(t, rawH, url), get(t, decH, url)
			if rr.Code != dr.Code {
				t.Fatalf("GET %s: raw status %d, decoded status %d", url, rr.Code, dr.Code)
			}
			if !bytes.Equal(rr.Body.Bytes(), dr.Body.Bytes()) {
				t.Fatalf("GET %s: bodies differ:\nraw     %s\ndecoded %s", url, rr.Body.Bytes(), dr.Body.Bytes())
			}
			// The raw path promises a sized response.
			if rr.Code == http.StatusOK {
				if cl := rr.Header().Get("Content-Length"); cl != strconv.Itoa(rr.Body.Len()) {
					t.Fatalf("GET %s: raw Content-Length %q, body is %d bytes", url, cl, rr.Body.Len())
				}
			}
			return rr.Body.Bytes()
		}

		urls := []string{
			"/reports",
			"/reports?verdict=attack",
			"/reports?verdict=suppressed",
			"/reports?verdict=flashloan&limit=7",
			"/reports?from=3&to=9",
			"/reports?from=999999",
			"/reports?verdict=bogus",
			"/reports?limit=0",
			"/reports?after=nothex",
			"/reports/" + hashes[0].String(),
			"/reports/" + hashes[len(hashes)-1].String(),
			"/reports/" + types.HashFromData([]byte("missing")).String(),
			"/reports/nothex",
		}
		for _, u := range urls {
			compare(u)
		}

		// Pagination walk on a small page size: every cursor the raw path
		// hands out must replay identically on the decoded path.
		next := "/reports?limit=5"
		for page := 0; next != "" && page < 200; page++ {
			body := compare(next)
			var env ReportsResponse
			if err := json.Unmarshal(body, &env); err != nil {
				t.Fatalf("page %d unmarshal: %v", page, err)
			}
			if !env.More {
				if env.NextAfter != "" {
					t.Fatalf("page %d: nextAfter %q set with more=false", page, env.NextAfter)
				}
				next = ""
				continue
			}
			next = "/reports?limit=5&after=" + env.NextAfter
		}
	}
}

// TestReportsPaginationEdges pins the edge cases a paging client can
// produce: a cursor at the very last record, an unknown cursor, limit=0,
// an invalid verdict, and an inverted block range. Each must answer with
// well-formed JSON — an error object or an empty page — never a 500.
func TestReportsPaginationEdges(t *testing.T) {
	arc, hashes := rawTestArchive(t, 9, 40)
	rawH, _ := rawAndDecodedHandlers(arc)

	check := func(url string, wantStatus int) map[string]any {
		t.Helper()
		rr := get(t, rawH, url)
		if rr.Code != wantStatus {
			t.Fatalf("GET %s: status %d, want %d (body %s)", url, rr.Code, wantStatus, rr.Body.Bytes())
		}
		if rr.Code >= http.StatusInternalServerError {
			t.Fatalf("GET %s: server error %d", url, rr.Code)
		}
		var v map[string]any
		if err := json.Unmarshal(rr.Body.Bytes(), &v); err != nil {
			t.Fatalf("GET %s: body is not JSON: %v (%s)", url, err, rr.Body.Bytes())
		}
		return v
	}

	// Cursor at the last record: a valid empty page, not an error.
	v := check("/reports?after="+hashes[len(hashes)-1].String(), http.StatusOK)
	if reports, ok := v["reports"].([]any); !ok || len(reports) != 0 {
		t.Fatalf("after-last page = %v, want empty reports array", v)
	}
	if v["more"] != false {
		t.Fatalf("after-last page claims more=%v", v["more"])
	}

	// Unknown cursor: a JSON error object, not a 500.
	v = check("/reports?after="+types.HashFromData([]byte("never stored")).String(), http.StatusBadRequest)
	if _, ok := v["error"]; !ok {
		t.Fatalf("unknown cursor reply %v has no error field", v)
	}

	// limit=0 and invalid verdict: rejected as bad requests.
	check("/reports?limit=0", http.StatusBadRequest)
	check("/reports?limit=-3", http.StatusBadRequest)
	check("/reports?verdict=bogus", http.StatusBadRequest)

	// Inverted range: nothing matches, and that is an empty page.
	v = check("/reports?from=30&to=2", http.StatusOK)
	if reports, ok := v["reports"].([]any); !ok || len(reports) != 0 {
		t.Fatalf("inverted range page = %v, want empty reports array", v)
	}
}

// TestRawServingConcurrent hammers the pooled read path from many
// goroutines (list pages and point gets interleaved) so the respBuf
// pool and the archive's shared read handles run under the race
// detector; every body must still be well-formed.
func TestRawServingConcurrent(t *testing.T) {
	arc, hashes := rawTestArchive(t, 5, 80)
	rawH, _ := rawAndDecodedHandlers(arc)
	srv := httptest.NewServer(rawH)
	defer srv.Close()

	const workers = 8
	var wg sync.WaitGroup
	errs := make(chan error, workers)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < 30; i++ {
				var url string
				if i%2 == 0 {
					url = fmt.Sprintf("%s/reports?limit=%d", srv.URL, 1+(w+i)%9)
				} else {
					url = srv.URL + "/reports/" + hashes[(w*31+i)%len(hashes)].String()
				}
				resp, err := http.Get(url)
				if err != nil {
					errs <- err
					return
				}
				body, err := io.ReadAll(resp.Body)
				resp.Body.Close()
				if err != nil {
					errs <- err
					return
				}
				if resp.StatusCode != http.StatusOK {
					errs <- fmt.Errorf("GET %s: status %d", url, resp.StatusCode)
					return
				}
				if !json.Valid(body) {
					errs <- fmt.Errorf("GET %s: invalid JSON body %q", url, body)
					return
				}
			}
		}(w)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Error(err)
	}
}
