package serve

import (
	"fmt"
	"io"
	"net/http"
	"sync"
	"testing"
)

// TestConcurrentRequests hammers every endpoint from parallel clients.
// Run under -race this exercises the stats mutex and the chain's locks —
// the server must behave as one detector shared by many monitors.
func TestConcurrentRequests(t *testing.T) {
	srv, res := testServer(t)
	urls := []string{
		srv.URL + "/tx/" + res.Receipt.TxHash.String(),
		fmt.Sprintf("%s/block/%d", srv.URL, res.Receipt.Block),
		srv.URL + "/stats",
		srv.URL + "/healthz",
	}
	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		for _, u := range urls {
			wg.Add(1)
			go func(u string) {
				defer wg.Done()
				resp, err := http.Get(u)
				if err != nil {
					t.Errorf("GET %s: %v", u, err)
					return
				}
				io.Copy(io.Discard, resp.Body)
				resp.Body.Close()
			}(u)
		}
	}
	wg.Wait()

	// 8 tx hits + 8 block scans of the same attack transaction.
	var st Stats
	getJSON(t, srv.URL+"/stats", http.StatusOK, &st)
	if st.Inspected != 16 || st.Attacks != 16 {
		t.Errorf("stats after concurrent load = %+v, want 16 inspected/attacks", st)
	}
}
