// HTTP-layer telemetry: per-route request counters (by status class),
// latency and response-size histograms, and the /metrics route itself.
//
// Routes are instrumented with wrapper handlers built once at Handler()
// time — the per-request cost is a pooled status-recorder, one clock
// read pair, and a few atomic adds. There is no per-request map lookup:
// each route closure captures its own series.
package serve

import (
	"net/http"
	"sync"
	"time"

	"leishen/internal/metrics"
)

// Metrics is the server's telemetry bundle. Attach with SetMetrics
// before Handler; the registry also becomes the body of GET /metrics.
type Metrics struct {
	reg *metrics.Registry
}

// NewMetrics binds the HTTP metric family to r. The respbuf pool
// counters are process-wide (the pool is shared), so registering two
// Metrics on one registry panics on the duplicate — one server per
// registry.
func NewMetrics(r *metrics.Registry) *Metrics {
	r.RegisterCounter("leishen_serve_respbuf_gets_total", "Pooled response buffers handed out.", &respPoolGets)
	r.RegisterCounter("leishen_serve_respbuf_allocs_total", "Pooled response buffers newly allocated (gets minus reuse).", &respPoolAllocs)
	return &Metrics{reg: r}
}

// statusClasses are the code classes requests are counted under; index
// with classIdx.
var statusClasses = [...]string{"2xx", "3xx", "4xx", "5xx"}

func classIdx(status int) int {
	if status < 200 || status >= 600 {
		return 3 // treat the exotic as server-side
	}
	if status < 300 {
		return 0
	}
	if status < 400 {
		return 1
	}
	if status < 500 {
		return 2
	}
	return 3
}

// routeMetrics is one route's series set.
type routeMetrics struct {
	requests [len(statusClasses)]*metrics.Counter
	latency  *metrics.Histogram
	bytes    *metrics.Histogram
}

// route registers the series for one route pattern.
func (m *Metrics) route(pattern string) *routeMetrics {
	rm := &routeMetrics{
		latency: m.reg.Histogram("leishen_http_request_seconds",
			"Request handling wall time.", metrics.DefLatencyBuckets,
			metrics.Label{Name: "route", Value: pattern}),
		bytes: m.reg.Histogram("leishen_http_response_bytes",
			"Response body size.", metrics.DefSizeBuckets,
			metrics.Label{Name: "route", Value: pattern}),
	}
	for i, class := range statusClasses {
		rm.requests[i] = m.reg.Counter("leishen_http_requests_total",
			"Requests served, by route and status class.",
			metrics.Label{Name: "route", Value: pattern},
			metrics.Label{Name: "code", Value: class})
	}
	return rm
}

// instrument wraps h with rm's accounting.
func (rm *routeMetrics) instrument(h http.Handler) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		rec := getStatusRecorder(w)
		start := time.Now()
		h.ServeHTTP(rec, r)
		rm.latency.ObserveDuration(time.Since(start))
		rm.requests[classIdx(rec.status)].Inc()
		rm.bytes.Observe(float64(rec.bytes))
		putStatusRecorder(rec)
	})
}

// statusRecorder captures the status code and body size a handler
// writes. Recorders are pooled so instrumentation does not allocate per
// request.
type statusRecorder struct {
	http.ResponseWriter
	status int
	bytes  int64
}

var recorderPool = sync.Pool{New: func() any { return &statusRecorder{} }}

func getStatusRecorder(w http.ResponseWriter) *statusRecorder {
	rec := recorderPool.Get().(*statusRecorder)
	rec.ResponseWriter = w
	rec.status = http.StatusOK
	rec.bytes = 0
	return rec
}

func putStatusRecorder(rec *statusRecorder) {
	rec.ResponseWriter = nil
	recorderPool.Put(rec)
}

func (rec *statusRecorder) WriteHeader(status int) {
	rec.status = status
	rec.ResponseWriter.WriteHeader(status)
}

func (rec *statusRecorder) Write(b []byte) (int, error) {
	n, err := rec.ResponseWriter.Write(b)
	rec.bytes += int64(n)
	return n, err
}
