// Package serve exposes the detector over HTTP — the deployment mode a
// monitoring service (Forta-style) would run: a node-side process that
// answers "is this transaction a flpAttack?" in microseconds.
//
// Endpoints:
//
//	GET  /healthz           liveness: uptime, archive record count,
//	                        follower lag (when attached); 503 with
//	                        status "degraded" when the writer is
//	                        retrying/failed or lag exceeds the threshold
//	GET  /stats             corpus-wide detection statistics
//	GET  /tx/{hash}         detection report for one transaction
//	GET  /block/{number}    reports for every flash loan tx in a block
//	POST /batch             batched ingest: {"hashes": [...]} scanned on
//	                        the parallel engine, reports in request order
//
// With an archive attached (SetArchive) three query endpoints answer
// from stored verdicts instead of re-running detection:
//
//	GET  /reports           archived reports; ?from=&to= bound the block
//	                        range, ?verdict=attack|flashloan|suppressed
//	                        filters, ?limit= and ?after={txhash} paginate
//	GET  /reports/{hash}    one archived report by transaction hash
//	GET  /checkpoint        the follower's durable progress checkpoint
package serve

import (
	"encoding/json"
	"mime"
	"net/http"
	"strconv"
	"strings"
	"sync"
	"time"

	"leishen/internal/archive"
	"leishen/internal/buildinfo"
	"leishen/internal/core"
	"leishen/internal/evm"
	"leishen/internal/flashloan"
	"leishen/internal/follower"
	"leishen/internal/scan"
	"leishen/internal/types"
)

// MaxBatch bounds one /batch request; larger corpora should be split by
// the client (the limit protects the monitor from one giant ingest call
// monopolizing the pool).
const MaxBatch = 10_000

// DefaultReportsLimit and MaxReportsLimit bound one /reports page.
const (
	DefaultReportsLimit = 100
	MaxReportsLimit     = 1000
)

// DefaultDegradedLag is the follower lag (blocks behind the source
// head) at which /healthz flips to degraded when Server.DegradedLag is
// unset. A monitor a few blocks behind is normal pipelining; tens of
// blocks means ingestion is not keeping up and alerts should fire.
const DefaultDegradedLag = 16

// Server serves detection reports over a chain snapshot.
type Server struct {
	chain *evm.Chain
	det   *core.Detector
	start time.Time

	// ScanOpts configures the worker pool used by /batch. Set before
	// Handler is called; the zero value means GOMAXPROCS workers.
	ScanOpts scan.Options

	// DecodeServing forces the legacy decode-then-re-encode
	// implementations of /reports and /reports/{hash}: archive.Select
	// into Record structs, then a fresh json.Encoder per request. The
	// default (false) is the zero-decode path — stored report bytes
	// assembled into a pooled buffer and written with Content-Length.
	// The two paths serve byte-identical bodies; this knob exists so the
	// serve benchmark and the regression tests can prove it and measure
	// the difference. Set before Handler is called.
	DecodeServing bool

	// DegradedLag is the follower lag (blocks) beyond which /healthz
	// reports degraded; 0 means DefaultDegradedLag. Set before Handler
	// is called.
	DegradedLag uint64

	arc *archive.Archive
	fol *follower.Follower
	met *Metrics

	mu    sync.Mutex
	stats Stats
}

// Stats summarizes what the server has inspected so far. It is the
// scan engine's summary type: one report-counting vocabulary across the
// batch engine, the follower and the HTTP surface.
type Stats = scan.Summary

// New builds a server.
func New(chain *evm.Chain, det *core.Detector) *Server {
	return &Server{chain: chain, det: det, start: time.Now()}
}

// SetArchive attaches the durable report store backing /reports,
// /reports/{hash} and /checkpoint. Call before Handler.
func (s *Server) SetArchive(a *archive.Archive) { s.arc = a }

// SetFollower attaches the ingestion daemon whose lag /healthz reports.
// Call before Handler.
func (s *Server) SetFollower(f *follower.Follower) { s.fol = f }

// SetMetrics attaches HTTP-layer telemetry: every route gains request,
// latency and response-size series, and GET /metrics serves m's
// registry in Prometheus text format. Call before Handler.
func (s *Server) SetMetrics(m *Metrics) { s.met = m }

// Handler returns the HTTP handler.
func (s *Server) Handler() http.Handler {
	mux := http.NewServeMux()
	handle := func(pattern string, h http.Handler) {
		if s.met != nil {
			h = s.met.route(pattern).instrument(h)
		}
		mux.Handle(pattern, h)
	}
	handle("GET /healthz", http.HandlerFunc(s.handleHealthz))
	handle("GET /stats", http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		s.mu.Lock()
		st := s.stats
		s.mu.Unlock()
		writeJSON(w, http.StatusOK, st)
	}))
	handle("GET /tx/{hash}", http.HandlerFunc(s.handleTx))
	handle("GET /block/{number}", http.HandlerFunc(s.handleBlock))
	handle("POST /batch", http.HandlerFunc(s.handleBatch))
	handle("GET /reports", http.HandlerFunc(s.handleReports))
	handle("GET /reports/{hash}", http.HandlerFunc(s.handleReportByTx))
	handle("GET /checkpoint", http.HandlerFunc(s.handleCheckpoint))
	if s.met != nil {
		handle("GET /metrics", s.met.reg.Handler())
	}
	return mux
}

// Healthz is the /healthz reply. Status is "ok" — or "degraded" (with
// a 503 status code) when the attached follower's writer is retrying
// or failed, or its lag exceeds the degraded threshold; Degraded then
// lists the human-readable reasons.
type Healthz struct {
	Status   string   `json:"status"`
	Degraded []string `json:"degraded,omitempty"`
	// Version is the build version stamped at link time (-ldflags -X);
	// "dev" for unstamped builds. GoVersion is the runtime's toolchain.
	Version       string `json:"version"`
	GoVersion     string `json:"go_version"`
	UptimeSeconds int64  `json:"uptime_seconds"`
	// Archive holds store figures — size, index-layer effectiveness
	// (sidecar loads vs. replays, segments pruned, cache hit rate) —
	// when an archive is attached.
	Archive *archive.Stats `json:"archive,omitempty"`
	// Follower holds ingestion progress when a follower is attached.
	Follower *follower.Stats `json:"follower,omitempty"`
}

func (s *Server) handleHealthz(w http.ResponseWriter, r *http.Request) {
	h := Healthz{
		Status:        "ok",
		Version:       buildinfo.Version,
		GoVersion:     buildinfo.GoVersion(),
		UptimeSeconds: int64(time.Since(s.start).Seconds()),
	}
	if s.arc != nil {
		st := s.arc.Stats()
		h.Archive = &st
	}
	status := http.StatusOK
	if s.fol != nil {
		st := s.fol.Stats()
		h.Follower = &st
		if err := s.fol.WriterErr(); err != nil {
			h.Degraded = append(h.Degraded, "archive writer failed: "+err.Error())
		} else if st.Degraded {
			h.Degraded = append(h.Degraded, "archive writer retrying after transient faults")
		}
		if lim := s.degradedLag(); st.Lag > lim {
			h.Degraded = append(h.Degraded,
				"follower lag "+strconv.FormatUint(st.Lag, 10)+" blocks exceeds "+strconv.FormatUint(lim, 10))
		}
	}
	if len(h.Degraded) > 0 {
		h.Status = "degraded"
		status = http.StatusServiceUnavailable
	}
	writePooledJSON(w, status, h)
}

func (s *Server) degradedLag() uint64 {
	if s.DegradedLag > 0 {
		return s.DegradedLag
	}
	return DefaultDegradedLag
}

// writerDown returns the follower's sticky archive-writer failure, if
// any — the state in which the store-backed and ingest endpoints
// refuse with 503 (temporarily unavailable, operator action needed)
// rather than serving from a store that is no longer advancing.
func (s *Server) writerDown() error {
	if s.fol == nil {
		return nil
	}
	return s.fol.WriterErr()
}

// ReportsResponse is the /reports reply: the stored report documents in
// block order plus the pagination cursor.
type ReportsResponse struct {
	Reports []json.RawMessage `json:"reports"`
	// More is true when the limit cut the scan short; NextAfter is then
	// the ?after= cursor for the next page.
	More      bool   `json:"more"`
	NextAfter string `json:"nextAfter,omitempty"`
}

// handleReports answers range queries from the archive — no detection
// runs; the stored verdict bytes are returned as written.
func (s *Server) handleReports(w http.ResponseWriter, r *http.Request) {
	if s.arc == nil {
		writeError(w, http.StatusServiceUnavailable, "no archive attached")
		return
	}
	if err := s.writerDown(); err != nil {
		writeError(w, http.StatusServiceUnavailable, "archive writer down: "+err.Error())
		return
	}
	q := archive.Query{Limit: DefaultReportsLimit}
	params := r.URL.Query()
	var err error
	if q.FromBlock, err = uintParam(params.Get("from")); err != nil {
		writeError(w, http.StatusBadRequest, "bad from: "+err.Error())
		return
	}
	if q.ToBlock, err = uintParam(params.Get("to")); err != nil {
		writeError(w, http.StatusBadRequest, "bad to: "+err.Error())
		return
	}
	if raw := params.Get("limit"); raw != "" {
		n, err := strconv.Atoi(raw)
		if err != nil || n <= 0 {
			writeError(w, http.StatusBadRequest, "bad limit "+strconv.Quote(raw))
			return
		}
		if n > MaxReportsLimit {
			n = MaxReportsLimit
		}
		q.Limit = n
	}
	if raw := params.Get("after"); raw != "" {
		if q.After, err = types.HashFromHex(raw); err != nil {
			writeError(w, http.StatusBadRequest, err.Error())
			return
		}
	}
	switch params.Get("verdict") {
	case "", "all":
	case "attack":
		q.Flags = archive.FlagAttack
	case "flashloan":
		q.Flags = archive.FlagFlashLoan
	case "suppressed":
		q.Flags = archive.FlagSuppressed
	default:
		writeError(w, http.StatusBadRequest, "verdict must be attack, flashloan, suppressed or all")
		return
	}
	if s.DecodeServing {
		s.reportsDecoded(w, q)
		return
	}
	recs, more, err := s.arc.SelectRaw(q)
	if err != nil {
		writeError(w, http.StatusBadRequest, err.Error())
		return
	}
	// Assemble the ReportsResponse envelope by hand around the stored
	// bytes — no unmarshal, no re-encode. The layout must stay
	// byte-identical to writeJSON(ReportsResponse{...}); the raw-vs-
	// decoded regression tests hold it there.
	rb := getRespBuf()
	rb.buf.WriteString(`{"reports":[`)
	for i := range recs {
		if i > 0 {
			rb.buf.WriteByte(',')
		}
		rb.buf.Write(recs[i].Report)
	}
	rb.buf.WriteString(`],"more":`)
	rb.buf.WriteString(strconv.FormatBool(more))
	if more && len(recs) > 0 {
		rb.buf.WriteString(`,"nextAfter":"`)
		rb.buf.WriteString(recs[len(recs)-1].TxHash.String())
		rb.buf.WriteByte('"')
	}
	rb.buf.WriteString("}\n")
	writeBuf(w, http.StatusOK, rb)
}

// reportsDecoded is the legacy /reports body: decoded records
// re-encoded through a per-request json.Encoder. Kept (behind
// Server.DecodeServing) as the benchmark and byte-identity reference
// for the raw path above.
func (s *Server) reportsDecoded(w http.ResponseWriter, q archive.Query) {
	recs, more, err := s.arc.Select(q)
	if err != nil {
		writeError(w, http.StatusBadRequest, err.Error())
		return
	}
	resp := ReportsResponse{Reports: make([]json.RawMessage, len(recs)), More: more}
	for i, rec := range recs {
		resp.Reports[i] = rec.Report
	}
	if more && len(recs) > 0 {
		resp.NextAfter = recs[len(recs)-1].TxHash.String()
	}
	writeJSON(w, http.StatusOK, resp)
}

func uintParam(raw string) (uint64, error) {
	if raw == "" {
		return 0, nil
	}
	return strconv.ParseUint(strings.TrimSpace(raw), 10, 64)
}

// handleReportByTx serves one stored report document.
func (s *Server) handleReportByTx(w http.ResponseWriter, r *http.Request) {
	if s.arc == nil {
		writeError(w, http.StatusServiceUnavailable, "no archive attached")
		return
	}
	if err := s.writerDown(); err != nil {
		writeError(w, http.StatusServiceUnavailable, "archive writer down: "+err.Error())
		return
	}
	raw := r.PathValue("hash")
	h, err := types.HashFromHex(raw)
	if err != nil {
		writeError(w, http.StatusBadRequest, err.Error())
		return
	}
	if s.DecodeServing {
		rec, ok, err := s.arc.Get(h)
		if err != nil {
			writeError(w, http.StatusInternalServerError, err.Error())
			return
		}
		if !ok {
			writeError(w, http.StatusNotFound, "no archived report for "+raw)
			return
		}
		writeJSON(w, http.StatusOK, json.RawMessage(rec.Report))
		return
	}
	rec, ok, err := s.arc.GetRaw(h)
	if err != nil {
		writeError(w, http.StatusInternalServerError, err.Error())
		return
	}
	if !ok {
		writeError(w, http.StatusNotFound, "no archived report for "+raw)
		return
	}
	rb := getRespBuf()
	rb.buf.Write(rec.Report)
	rb.buf.WriteByte('\n')
	writeBuf(w, http.StatusOK, rb)
}

func (s *Server) handleCheckpoint(w http.ResponseWriter, r *http.Request) {
	if s.arc == nil {
		writeError(w, http.StatusServiceUnavailable, "no archive attached")
		return
	}
	cp, ok := s.arc.Checkpoint()
	if !ok {
		writeError(w, http.StatusNotFound, "archive holds no checkpoint yet")
		return
	}
	writeJSON(w, http.StatusOK, cp)
}

// BatchRequest is the /batch ingest payload.
type BatchRequest struct {
	// Hashes lists the transactions to scan, in the order reports are
	// wanted back.
	Hashes []string `json:"hashes"`
}

// BatchResponse is the /batch reply: one report per requested hash, in
// request order, plus the batch summary.
type BatchResponse struct {
	Reports []core.ReportJSON `json:"reports"`
	Summary scan.Summary      `json:"summary"`
}

// handleBatch resolves the requested receipts and scans them on the
// parallel engine. Output order matches request order regardless of the
// pool's scheduling, so clients can zip reports back to their hashes.
func (s *Server) handleBatch(w http.ResponseWriter, r *http.Request) {
	if err := s.writerDown(); err != nil {
		writeError(w, http.StatusServiceUnavailable, "archive writer down: "+err.Error())
		return
	}
	if ct := r.Header.Get("Content-Type"); ct != "" {
		media, _, err := mime.ParseMediaType(ct)
		if err != nil || media != "application/json" {
			writeError(w, http.StatusUnsupportedMediaType, "batch body must be application/json, got "+strconv.Quote(ct))
			return
		}
	}
	var req BatchRequest
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
		writeError(w, http.StatusBadRequest, "bad batch payload: "+err.Error())
		return
	}
	if len(req.Hashes) > MaxBatch {
		writeError(w, http.StatusRequestEntityTooLarge,
			"batch of "+strconv.Itoa(len(req.Hashes))+" exceeds the "+strconv.Itoa(MaxBatch)+" limit")
		return
	}
	receipts := make([]*evm.Receipt, 0, len(req.Hashes))
	for _, raw := range req.Hashes {
		h, err := types.HashFromHex(raw)
		if err != nil {
			writeError(w, http.StatusBadRequest, err.Error())
			return
		}
		receipt, ok := s.chain.Receipt(h)
		if !ok {
			writeError(w, http.StatusNotFound, "unknown transaction "+raw)
			return
		}
		receipts = append(receipts, receipt)
	}
	reports, sum := scan.Scan(s.det, receipts, s.ScanOpts)
	s.mu.Lock()
	s.stats.Add(sum)
	s.mu.Unlock()
	resp := BatchResponse{Reports: make([]core.ReportJSON, len(reports)), Summary: sum}
	for i, rep := range reports {
		resp.Reports[i] = rep.JSON()
	}
	writePooledJSON(w, http.StatusOK, resp)
}

func (s *Server) handleTx(w http.ResponseWriter, r *http.Request) {
	raw := r.PathValue("hash")
	h, err := types.HashFromHex(raw)
	if err != nil {
		writeError(w, http.StatusBadRequest, err.Error())
		return
	}
	receipt, ok := s.chain.Receipt(h)
	if !ok {
		writeError(w, http.StatusNotFound, "unknown transaction "+raw)
		return
	}
	writeJSON(w, http.StatusOK, s.inspect(receipt).JSON())
}

func (s *Server) handleBlock(w http.ResponseWriter, r *http.Request) {
	n, err := strconv.ParseUint(strings.TrimSpace(r.PathValue("number")), 10, 64)
	if err != nil {
		writeError(w, http.StatusBadRequest, "bad block number")
		return
	}
	var blk *evm.Block
	for _, b := range s.chain.Blocks() {
		if b.Number == n {
			blk = b
			break
		}
	}
	if blk == nil {
		writeError(w, http.StatusNotFound, "unknown block")
		return
	}
	reports := make([]core.ReportJSON, 0, 4)
	for _, receipt := range blk.Receipts {
		if !receipt.Success || !flashloan.IsFlashLoanTx(receipt) {
			continue
		}
		reports = append(reports, s.inspect(receipt).JSON())
	}
	writeJSON(w, http.StatusOK, map[string]any{
		"block":   blk.Number,
		"time":    blk.Time,
		"reports": reports,
	})
}

func (s *Server) inspect(receipt *evm.Receipt) *core.Report {
	rep := s.det.Inspect(receipt)
	s.mu.Lock()
	s.stats.Observe(rep)
	s.mu.Unlock()
	return rep
}

func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	//lint:allow errflow headers are already sent; an encode failure here has no recovery path
	_ = json.NewEncoder(w).Encode(v)
}

func writeError(w http.ResponseWriter, status int, msg string) {
	writeJSON(w, status, map[string]string{"error": msg})
}
