// Package serve exposes the detector over HTTP — the deployment mode a
// monitoring service (Forta-style) would run: a node-side process that
// answers "is this transaction a flpAttack?" in microseconds.
//
// Endpoints:
//
//	GET  /healthz           liveness
//	GET  /stats             corpus-wide detection statistics
//	GET  /tx/{hash}         detection report for one transaction
//	GET  /block/{number}    reports for every flash loan tx in a block
//	POST /batch             batched ingest: {"hashes": [...]} scanned on
//	                        the parallel engine, reports in request order
package serve

import (
	"encoding/json"
	"net/http"
	"strconv"
	"strings"
	"sync"

	"leishen/internal/core"
	"leishen/internal/evm"
	"leishen/internal/flashloan"
	"leishen/internal/scan"
	"leishen/internal/types"
)

// MaxBatch bounds one /batch request; larger corpora should be split by
// the client (the limit protects the monitor from one giant ingest call
// monopolizing the pool).
const MaxBatch = 10_000

// Server serves detection reports over a chain snapshot.
type Server struct {
	chain *evm.Chain
	det   *core.Detector

	// ScanOpts configures the worker pool used by /batch. Set before
	// Handler is called; the zero value means GOMAXPROCS workers.
	ScanOpts scan.Options

	mu    sync.Mutex
	stats Stats
}

// Stats summarizes what the server has inspected so far.
type Stats struct {
	Inspected  int `json:"inspected"`
	FlashLoans int `json:"flashLoans"`
	Attacks    int `json:"attacks"`
	Suppressed int `json:"suppressed"`
}

// New builds a server.
func New(chain *evm.Chain, det *core.Detector) *Server {
	return &Server{chain: chain, det: det}
}

// Handler returns the HTTP handler.
func (s *Server) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("GET /healthz", func(w http.ResponseWriter, r *http.Request) {
		writeJSON(w, http.StatusOK, map[string]string{"status": "ok"})
	})
	mux.HandleFunc("GET /stats", func(w http.ResponseWriter, r *http.Request) {
		s.mu.Lock()
		st := s.stats
		s.mu.Unlock()
		writeJSON(w, http.StatusOK, st)
	})
	mux.HandleFunc("GET /tx/{hash}", s.handleTx)
	mux.HandleFunc("GET /block/{number}", s.handleBlock)
	mux.HandleFunc("POST /batch", s.handleBatch)
	return mux
}

// BatchRequest is the /batch ingest payload.
type BatchRequest struct {
	// Hashes lists the transactions to scan, in the order reports are
	// wanted back.
	Hashes []string `json:"hashes"`
}

// BatchResponse is the /batch reply: one report per requested hash, in
// request order, plus the batch summary.
type BatchResponse struct {
	Reports []core.ReportJSON `json:"reports"`
	Summary scan.Summary      `json:"summary"`
}

// handleBatch resolves the requested receipts and scans them on the
// parallel engine. Output order matches request order regardless of the
// pool's scheduling, so clients can zip reports back to their hashes.
func (s *Server) handleBatch(w http.ResponseWriter, r *http.Request) {
	var req BatchRequest
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
		writeError(w, http.StatusBadRequest, "bad batch payload: "+err.Error())
		return
	}
	if len(req.Hashes) > MaxBatch {
		writeError(w, http.StatusRequestEntityTooLarge,
			"batch of "+strconv.Itoa(len(req.Hashes))+" exceeds the "+strconv.Itoa(MaxBatch)+" limit")
		return
	}
	receipts := make([]*evm.Receipt, 0, len(req.Hashes))
	for _, raw := range req.Hashes {
		h, err := types.HashFromHex(raw)
		if err != nil {
			writeError(w, http.StatusBadRequest, err.Error())
			return
		}
		receipt, ok := s.chain.Receipt(h)
		if !ok {
			writeError(w, http.StatusNotFound, "unknown transaction "+raw)
			return
		}
		receipts = append(receipts, receipt)
	}
	reports, sum := scan.Scan(s.det, receipts, s.ScanOpts)
	s.mu.Lock()
	s.stats.Inspected += sum.Inspected
	s.stats.FlashLoans += sum.FlashLoans
	s.stats.Attacks += sum.Attacks
	s.stats.Suppressed += sum.Suppressed
	s.mu.Unlock()
	resp := BatchResponse{Reports: make([]core.ReportJSON, len(reports)), Summary: sum}
	for i, rep := range reports {
		resp.Reports[i] = rep.JSON()
	}
	writeJSON(w, http.StatusOK, resp)
}

func (s *Server) handleTx(w http.ResponseWriter, r *http.Request) {
	raw := r.PathValue("hash")
	h, err := types.HashFromHex(raw)
	if err != nil {
		writeError(w, http.StatusBadRequest, err.Error())
		return
	}
	receipt, ok := s.chain.Receipt(h)
	if !ok {
		writeError(w, http.StatusNotFound, "unknown transaction "+raw)
		return
	}
	writeJSON(w, http.StatusOK, s.inspect(receipt).JSON())
}

func (s *Server) handleBlock(w http.ResponseWriter, r *http.Request) {
	n, err := strconv.ParseUint(strings.TrimSpace(r.PathValue("number")), 10, 64)
	if err != nil {
		writeError(w, http.StatusBadRequest, "bad block number")
		return
	}
	var blk *evm.Block
	for _, b := range s.chain.Blocks() {
		if b.Number == n {
			blk = b
			break
		}
	}
	if blk == nil {
		writeError(w, http.StatusNotFound, "unknown block")
		return
	}
	reports := make([]core.ReportJSON, 0, 4)
	for _, receipt := range blk.Receipts {
		if !receipt.Success || !flashloan.IsFlashLoanTx(receipt) {
			continue
		}
		reports = append(reports, s.inspect(receipt).JSON())
	}
	writeJSON(w, http.StatusOK, map[string]any{
		"block":   blk.Number,
		"time":    blk.Time,
		"reports": reports,
	})
}

func (s *Server) inspect(receipt *evm.Receipt) *core.Report {
	rep := s.det.Inspect(receipt)
	s.mu.Lock()
	s.stats.Inspected++
	if len(rep.Loans) > 0 {
		s.stats.FlashLoans++
	}
	if rep.IsAttack {
		s.stats.Attacks++
	}
	if rep.SuppressedByHeuristic {
		s.stats.Suppressed++
	}
	s.mu.Unlock()
	return rep
}

func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	_ = json.NewEncoder(w).Encode(v)
}

func writeError(w http.ResponseWriter, status int, msg string) {
	writeJSON(w, status, map[string]string{"error": msg})
}
