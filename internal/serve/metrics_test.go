package serve

import (
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"

	"leishen/internal/attacks"
	"leishen/internal/core"
	"leishen/internal/metrics"
	"leishen/internal/simplify"
)

func testMetricsServer(t *testing.T) (*httptest.Server, *attacks.Result, *metrics.Registry) {
	t.Helper()
	sc, ok := attacks.ByName("Harvest Finance")
	if !ok {
		t.Fatal("scenario missing")
	}
	res, err := sc.Run()
	if err != nil {
		t.Fatal(err)
	}
	det := core.NewDetector(res.Env.Chain, res.Env.Registry, core.Options{
		Simplify: simplify.Options{WETH: res.Env.WETH},
	})
	s := New(res.Env.Chain, det)
	reg := metrics.NewRegistry()
	s.SetMetrics(NewMetrics(reg))
	srv := httptest.NewServer(s.Handler())
	t.Cleanup(srv.Close)
	return srv, res, reg
}

// TestRouteMetrics drives a mix of hits and errors through an
// instrumented server and checks the per-route series: status classes
// land in the right counters, latency and size histograms observe one
// sample per request, and /metrics itself serves the exposition.
func TestRouteMetrics(t *testing.T) {
	srv, res, reg := testMetricsServer(t)

	getJSON(t, srv.URL+"/healthz", http.StatusOK, nil)
	getJSON(t, srv.URL+"/healthz", http.StatusOK, nil)
	getJSON(t, srv.URL+"/tx/"+res.Receipt.TxHash.String(), http.StatusOK, nil)
	getJSON(t, srv.URL+"/tx/not-a-hash", http.StatusBadRequest, nil)
	getJSON(t, srv.URL+"/reports", http.StatusServiceUnavailable, nil)

	out := string(reg.AppendText(nil))
	for _, want := range []string{
		`leishen_http_requests_total{code="2xx",route="GET /healthz"} 2`,
		`leishen_http_requests_total{code="2xx",route="GET /tx/{hash}"} 1`,
		`leishen_http_requests_total{code="4xx",route="GET /tx/{hash}"} 1`,
		`leishen_http_requests_total{code="5xx",route="GET /reports"} 1`,
		`leishen_http_request_seconds_count{route="GET /healthz"} 2`,
		`leishen_http_response_bytes_count{route="GET /healthz"} 2`,
	} {
		if !strings.Contains(out, want) {
			t.Errorf("exposition missing %q\ngot:\n%s", want, grepLines(out, "leishen_http"))
		}
	}

	// /metrics serves the same registry over HTTP with the exposition
	// content type, and is itself instrumented.
	resp, err := http.Get(srv.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("GET /metrics = %d", resp.StatusCode)
	}
	if ct := resp.Header.Get("Content-Type"); ct != metrics.ContentType {
		t.Errorf("Content-Type = %q, want %q", ct, metrics.ContentType)
	}
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{
		"leishen_http_requests_total", "leishen_serve_respbuf_gets_total",
		`route="GET /metrics"`,
	} {
		if !strings.Contains(string(body), want) {
			t.Errorf("/metrics body missing %q", want)
		}
	}

	// The pool counters move with pooled writes (healthz uses one), and
	// reuse means gets can exceed allocs but never trail them.
	gets, allocs := respPoolGets.Value(), respPoolAllocs.Value()
	if gets == 0 || gets < allocs {
		t.Errorf("respbuf pool gets=%d allocs=%d, want gets>=allocs>0", gets, allocs)
	}
}

// TestHealthzBuildInfo pins the identity fields /healthz gained.
func TestHealthzBuildInfo(t *testing.T) {
	srv, _ := testServer(t)
	var h Healthz
	getJSON(t, srv.URL+"/healthz", http.StatusOK, &h)
	if h.Version == "" {
		t.Errorf("version empty, want the stamped or dev version")
	}
	if !strings.HasPrefix(h.GoVersion, "go") {
		t.Errorf("go_version = %q, want a goX.Y string", h.GoVersion)
	}
	if h.UptimeSeconds < 0 {
		t.Errorf("uptime_seconds = %d", h.UptimeSeconds)
	}
}

// grepLines filters out's lines to those containing needle.
func grepLines(out, needle string) string {
	var lines []string
	for _, line := range strings.Split(out, "\n") {
		if strings.Contains(line, needle) {
			lines = append(lines, line)
		}
	}
	return strings.Join(lines, "\n")
}
