package serve

import (
	"bytes"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"testing"

	"leishen/internal/archive"
	"leishen/internal/attacks"
	"leishen/internal/core"
	"leishen/internal/follower"
	"leishen/internal/simplify"
)

// testArchiveServer runs the Harvest scenario chain through a follower
// into a fresh archive and serves it — the full storage-backed
// deployment in miniature.
func testArchiveServer(t *testing.T) (*httptest.Server, *attacks.Result) {
	t.Helper()
	sc, ok := attacks.ByName("Harvest Finance")
	if !ok {
		t.Fatal("scenario missing")
	}
	res, err := sc.Run()
	if err != nil {
		t.Fatal(err)
	}
	det := core.NewDetector(res.Env.Chain, res.Env.Registry, core.Options{
		Simplify: simplify.Options{WETH: res.Env.WETH},
	})
	arc, err := archive.Open(t.TempDir(), archive.Options{})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { arc.Close() })
	fol, err := follower.New(follower.ChainSource(res.Env.Chain), det, arc, follower.Options{})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { fol.Close() })
	if err := fol.CatchUp(); err != nil {
		t.Fatal(err)
	}

	s := New(res.Env.Chain, det)
	s.SetArchive(arc)
	s.SetFollower(fol)
	srv := httptest.NewServer(s.Handler())
	t.Cleanup(srv.Close)
	return srv, res
}

func TestReportsEndpoint(t *testing.T) {
	srv, res := testArchiveServer(t)

	var resp ReportsResponse
	getJSON(t, srv.URL+"/reports?verdict=attack", http.StatusOK, &resp)
	if len(resp.Reports) != 1 || resp.More {
		t.Fatalf("attack query: %d reports, more=%v", len(resp.Reports), resp.More)
	}
	var rep core.ReportJSON
	if err := json.Unmarshal(resp.Reports[0], &rep); err != nil {
		t.Fatalf("stored report does not decode: %v", err)
	}
	if rep.TxHash != res.Receipt.TxHash.String() || !rep.IsAttack {
		t.Fatalf("archived attack = %+v, want tx %s", rep, res.Receipt.TxHash)
	}

	// Block-range exclusion: nothing above the head.
	getJSON(t, srv.URL+"/reports?from=1000000", http.StatusOK, &resp)
	if len(resp.Reports) != 0 {
		t.Fatalf("range beyond head returned %d reports", len(resp.Reports))
	}

	// Malformed parameters are rejected.
	getJSON(t, srv.URL+"/reports?verdict=bogus", http.StatusBadRequest, nil)
	getJSON(t, srv.URL+"/reports?from=minustwo", http.StatusBadRequest, nil)
	getJSON(t, srv.URL+"/reports?limit=0", http.StatusBadRequest, nil)
}

func TestReportByTxEndpoint(t *testing.T) {
	srv, res := testArchiveServer(t)
	var rep core.ReportJSON
	getJSON(t, srv.URL+"/reports/"+res.Receipt.TxHash.String(), http.StatusOK, &rep)
	if rep.TxHash != res.Receipt.TxHash.String() || !rep.IsAttack {
		t.Fatalf("archived report = %+v", rep)
	}
	getJSON(t, srv.URL+"/reports/0x"+"00000000000000000000000000000000000000000000000000000000000000aa", http.StatusNotFound, nil)
	getJSON(t, srv.URL+"/reports/nothex", http.StatusBadRequest, nil)
}

func TestCheckpointEndpoint(t *testing.T) {
	srv, res := testArchiveServer(t)
	var cp archive.Checkpoint
	getJSON(t, srv.URL+"/checkpoint", http.StatusOK, &cp)
	if head := res.Env.Chain.HeadBlock(); cp.Block != head {
		t.Fatalf("checkpoint block = %d, want head %d", cp.Block, head)
	}
}

func TestHealthzWithArchive(t *testing.T) {
	srv, _ := testArchiveServer(t)
	var h Healthz
	getJSON(t, srv.URL+"/healthz", http.StatusOK, &h)
	if h.Status != "ok" || h.Archive == nil || h.Follower == nil {
		t.Fatalf("healthz = %+v", h)
	}
	if h.Archive.Records < 1 || h.Archive.Segments < 1 {
		t.Fatalf("archive section = %+v", h.Archive)
	}
	if h.Follower.Lag != 0 {
		t.Fatalf("caught-up follower reports lag %d", h.Follower.Lag)
	}
}

func TestArchiveEndpointsWithoutArchive(t *testing.T) {
	srv, _ := testServer(t)
	getJSON(t, srv.URL+"/reports", http.StatusServiceUnavailable, nil)
	getJSON(t, srv.URL+"/reports/0x"+"00000000000000000000000000000000000000000000000000000000000000aa", http.StatusServiceUnavailable, nil)
	getJSON(t, srv.URL+"/checkpoint", http.StatusServiceUnavailable, nil)
}

func TestBatchContentType(t *testing.T) {
	srv, res := testServer(t)
	body, err := json.Marshal(BatchRequest{Hashes: []string{res.Receipt.TxHash.String()}})
	if err != nil {
		t.Fatal(err)
	}

	resp, err := http.Post(srv.URL+"/batch", "text/plain", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusUnsupportedMediaType {
		t.Fatalf("text/plain batch = %d, want 415", resp.StatusCode)
	}

	resp, err = http.Post(srv.URL+"/batch", "application/json; charset=utf-8", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("json batch = %d, want 200", resp.StatusCode)
	}
	var out BatchResponse
	if err := json.NewDecoder(resp.Body).Decode(&out); err != nil {
		t.Fatal(err)
	}
	if len(out.Reports) != 1 || !out.Reports[0].IsAttack {
		t.Fatalf("batch reply = %+v", out)
	}
}
