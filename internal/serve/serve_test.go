package serve

import (
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"testing"

	"leishen/internal/attacks"
	"leishen/internal/core"
	"leishen/internal/simplify"
)

func testServer(t *testing.T) (*httptest.Server, *attacks.Result) {
	t.Helper()
	sc, ok := attacks.ByName("Harvest Finance")
	if !ok {
		t.Fatal("scenario missing")
	}
	res, err := sc.Run()
	if err != nil {
		t.Fatal(err)
	}
	det := core.NewDetector(res.Env.Chain, res.Env.Registry, core.Options{
		Simplify: simplify.Options{WETH: res.Env.WETH},
	})
	srv := httptest.NewServer(New(res.Env.Chain, det).Handler())
	t.Cleanup(srv.Close)
	return srv, res
}

func getJSON(t *testing.T, url string, wantStatus int, into any) {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != wantStatus {
		t.Fatalf("GET %s = %d, want %d", url, resp.StatusCode, wantStatus)
	}
	if into != nil {
		if err := json.NewDecoder(resp.Body).Decode(into); err != nil {
			t.Fatalf("decode: %v", err)
		}
	}
}

func TestHealthz(t *testing.T) {
	srv, _ := testServer(t)
	var out map[string]string
	getJSON(t, srv.URL+"/healthz", http.StatusOK, &out)
	if out["status"] != "ok" {
		t.Errorf("health = %v", out)
	}
}

func TestTxReport(t *testing.T) {
	srv, res := testServer(t)
	var rep core.ReportJSON
	getJSON(t, srv.URL+"/tx/"+res.Receipt.TxHash.String(), http.StatusOK, &rep)
	if !rep.IsAttack || !rep.IsFlashLoanTx {
		t.Fatalf("report = %+v", rep)
	}
	if len(rep.Matches) == 0 || rep.Matches[0].Pattern != "MBS" {
		t.Errorf("matches = %v", rep.Matches)
	}
	if len(rep.Loans) != 1 || rep.Loans[0].Provider != "Uniswap" {
		t.Errorf("loans = %v", rep.Loans)
	}
	if rep.ElapsedMicros < 0 {
		t.Errorf("elapsed = %d", rep.ElapsedMicros)
	}
}

func TestTxErrors(t *testing.T) {
	srv, _ := testServer(t)
	getJSON(t, srv.URL+"/tx/nothex", http.StatusBadRequest, nil)
	missing := "0x" + fmt.Sprintf("%064x", 12345)
	getJSON(t, srv.URL+"/tx/"+missing, http.StatusNotFound, nil)
}

func TestBlockScan(t *testing.T) {
	srv, res := testServer(t)
	type blockResp struct {
		Block   uint64            `json:"block"`
		Reports []core.ReportJSON `json:"reports"`
	}
	var out blockResp
	url := fmt.Sprintf("%s/block/%d", srv.URL, res.Receipt.Block)
	getJSON(t, url, http.StatusOK, &out)
	if len(out.Reports) != 1 || !out.Reports[0].IsAttack {
		t.Fatalf("block reports = %+v", out.Reports)
	}
	getJSON(t, srv.URL+"/block/999999", http.StatusNotFound, nil)
	getJSON(t, srv.URL+"/block/xyz", http.StatusBadRequest, nil)
}

func TestStatsAccumulate(t *testing.T) {
	srv, res := testServer(t)
	getJSON(t, srv.URL+"/tx/"+res.Receipt.TxHash.String(), http.StatusOK, nil)
	getJSON(t, srv.URL+"/tx/"+res.Receipt.TxHash.String(), http.StatusOK, nil)
	var st Stats
	getJSON(t, srv.URL+"/stats", http.StatusOK, &st)
	if st.Inspected != 2 || st.Attacks != 2 || st.FlashLoans != 2 {
		t.Errorf("stats = %+v", st)
	}
}
