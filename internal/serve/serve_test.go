package serve

import (
	"bytes"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"testing"

	"leishen/internal/attacks"
	"leishen/internal/core"
	"leishen/internal/simplify"
)

func testServer(t *testing.T) (*httptest.Server, *attacks.Result) {
	t.Helper()
	sc, ok := attacks.ByName("Harvest Finance")
	if !ok {
		t.Fatal("scenario missing")
	}
	res, err := sc.Run()
	if err != nil {
		t.Fatal(err)
	}
	det := core.NewDetector(res.Env.Chain, res.Env.Registry, core.Options{
		Simplify: simplify.Options{WETH: res.Env.WETH},
	})
	srv := httptest.NewServer(New(res.Env.Chain, det).Handler())
	t.Cleanup(srv.Close)
	return srv, res
}

func getJSON(t *testing.T, url string, wantStatus int, into any) {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != wantStatus {
		t.Fatalf("GET %s = %d, want %d", url, resp.StatusCode, wantStatus)
	}
	if into != nil {
		if err := json.NewDecoder(resp.Body).Decode(into); err != nil {
			t.Fatalf("decode: %v", err)
		}
	}
}

func TestHealthz(t *testing.T) {
	srv, _ := testServer(t)
	var out Healthz
	getJSON(t, srv.URL+"/healthz", http.StatusOK, &out)
	if out.Status != "ok" {
		t.Errorf("health = %+v", out)
	}
	if out.Archive != nil || out.Follower != nil {
		t.Errorf("bare server advertises archive/follower sections: %+v", out)
	}
}

func TestTxReport(t *testing.T) {
	srv, res := testServer(t)
	var rep core.ReportJSON
	getJSON(t, srv.URL+"/tx/"+res.Receipt.TxHash.String(), http.StatusOK, &rep)
	if !rep.IsAttack || !rep.IsFlashLoanTx {
		t.Fatalf("report = %+v", rep)
	}
	if len(rep.Matches) == 0 || rep.Matches[0].Pattern != "MBS" {
		t.Errorf("matches = %v", rep.Matches)
	}
	if len(rep.Loans) != 1 || rep.Loans[0].Provider != "Uniswap" {
		t.Errorf("loans = %v", rep.Loans)
	}
	if rep.ElapsedMicros < 0 {
		t.Errorf("elapsed = %d", rep.ElapsedMicros)
	}
}

func TestTxErrors(t *testing.T) {
	srv, _ := testServer(t)
	getJSON(t, srv.URL+"/tx/nothex", http.StatusBadRequest, nil)
	missing := "0x" + fmt.Sprintf("%064x", 12345)
	getJSON(t, srv.URL+"/tx/"+missing, http.StatusNotFound, nil)
}

func TestBlockScan(t *testing.T) {
	srv, res := testServer(t)
	type blockResp struct {
		Block   uint64            `json:"block"`
		Reports []core.ReportJSON `json:"reports"`
	}
	var out blockResp
	url := fmt.Sprintf("%s/block/%d", srv.URL, res.Receipt.Block)
	getJSON(t, url, http.StatusOK, &out)
	if len(out.Reports) != 1 || !out.Reports[0].IsAttack {
		t.Fatalf("block reports = %+v", out.Reports)
	}
	getJSON(t, srv.URL+"/block/999999", http.StatusNotFound, nil)
	getJSON(t, srv.URL+"/block/xyz", http.StatusBadRequest, nil)
}

func postJSON(t *testing.T, url string, body any, wantStatus int, into any) {
	t.Helper()
	raw, err := json.Marshal(body)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.Post(url, "application/json", bytes.NewReader(raw))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != wantStatus {
		t.Fatalf("POST %s = %d, want %d", url, resp.StatusCode, wantStatus)
	}
	if into != nil {
		if err := json.NewDecoder(resp.Body).Decode(into); err != nil {
			t.Fatalf("decode: %v", err)
		}
	}
}

func TestBatch(t *testing.T) {
	srv, res := testServer(t)
	hash := res.Receipt.TxHash.String()
	var out BatchResponse
	postJSON(t, srv.URL+"/batch", BatchRequest{Hashes: []string{hash, hash, hash}},
		http.StatusOK, &out)
	if len(out.Reports) != 3 {
		t.Fatalf("got %d reports, want 3", len(out.Reports))
	}
	for i, rep := range out.Reports {
		if !rep.IsAttack || rep.TxHash != hash {
			t.Errorf("report %d = %+v", i, rep)
		}
	}
	if out.Summary.Inspected != 3 || out.Summary.Attacks != 3 || out.Summary.FlashLoans != 3 {
		t.Errorf("summary = %+v", out.Summary)
	}
	var st Stats
	getJSON(t, srv.URL+"/stats", http.StatusOK, &st)
	if st.Inspected != 3 || st.Attacks != 3 {
		t.Errorf("stats after batch = %+v", st)
	}
}

func TestBatchErrors(t *testing.T) {
	srv, _ := testServer(t)
	postJSON(t, srv.URL+"/batch", BatchRequest{Hashes: []string{"nothex"}},
		http.StatusBadRequest, nil)
	missing := "0x" + fmt.Sprintf("%064x", 12345)
	postJSON(t, srv.URL+"/batch", BatchRequest{Hashes: []string{missing}},
		http.StatusNotFound, nil)
	over := BatchRequest{Hashes: make([]string, MaxBatch+1)}
	postJSON(t, srv.URL+"/batch", over, http.StatusRequestEntityTooLarge, nil)
	resp, err := http.Post(srv.URL+"/batch", "application/json", bytes.NewReader([]byte("{")))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("truncated payload = %d, want 400", resp.StatusCode)
	}
}

func TestStatsAccumulate(t *testing.T) {
	srv, res := testServer(t)
	getJSON(t, srv.URL+"/tx/"+res.Receipt.TxHash.String(), http.StatusOK, nil)
	getJSON(t, srv.URL+"/tx/"+res.Receipt.TxHash.String(), http.StatusOK, nil)
	var st Stats
	getJSON(t, srv.URL+"/stats", http.StatusOK, &st)
	if st.Inspected != 2 || st.Attacks != 2 || st.FlashLoans != 2 {
		t.Errorf("stats = %+v", st)
	}
}
