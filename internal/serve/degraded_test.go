// Degraded-mode tests: the HTTP surface must report (and gate on) the
// follower's health rather than serving 200s from a store that is no
// longer advancing, and must answer 503 — temporarily unavailable —
// not 500 while the archive writer is down.
package serve

import (
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"leishen/internal/archive"
	"leishen/internal/attacks"
	"leishen/internal/core"
	"leishen/internal/evm"
	"leishen/internal/follower"
	"leishen/internal/simplify"
	"leishen/internal/vfs"
)

// brokenWriterServer builds the storage-backed deployment on a disk
// that fails every write, drives the follower until its writer goes
// sticky, and serves the wreckage.
func brokenWriterServer(t *testing.T) (*httptest.Server, *attacks.Result) {
	t.Helper()
	sc, ok := attacks.ByName("Harvest Finance")
	if !ok {
		t.Fatal("scenario missing")
	}
	res, err := sc.Run()
	if err != nil {
		t.Fatal(err)
	}
	det := core.NewDetector(res.Env.Chain, res.Env.Registry, core.Options{
		Simplify: simplify.Options{WETH: res.Env.WETH},
	})
	ffs := vfs.NewFaultFS(vfs.NewMemFS(), vfs.FaultPlan{})
	arc, err := archive.OpenFS(ffs, "arc", archive.Options{})
	if err != nil {
		t.Fatal(err)
	}
	fol, err := follower.New(follower.ChainSource(res.Env.Chain), det, arc, follower.Options{
		Retry: follower.RetryPolicy{MaxAttempts: 2, BaseDelay: time.Millisecond, MaxDelay: 2 * time.Millisecond},
	})
	if err != nil {
		t.Fatal(err)
	}
	ffs.SetPlan(vfs.FaultPlan{WriteErrEvery: 1}) // every write fails, forever
	if err := fol.CatchUp(); err == nil {
		t.Fatal("CatchUp succeeded on a permanently failing disk")
	}
	if fol.WriterErr() == nil {
		t.Fatal("writer did not go sticky")
	}

	s := New(res.Env.Chain, det)
	s.SetArchive(arc)
	s.SetFollower(fol)
	srv := httptest.NewServer(s.Handler())
	t.Cleanup(srv.Close)
	return srv, res
}

func TestHealthzDegradedOnWriterFailure(t *testing.T) {
	srv, res := brokenWriterServer(t)

	var h Healthz
	getJSON(t, srv.URL+"/healthz", http.StatusServiceUnavailable, &h)
	if h.Status != "degraded" {
		t.Fatalf("status = %q, want degraded", h.Status)
	}
	if len(h.Degraded) == 0 || !strings.Contains(h.Degraded[0], "archive writer failed") {
		t.Fatalf("degraded reasons = %v", h.Degraded)
	}
	if h.Follower == nil || !h.Follower.WriterFailed {
		t.Fatalf("follower stats = %+v, want WriterFailed", h.Follower)
	}

	// Store-backed and ingest endpoints refuse with 503, not 500.
	getJSON(t, srv.URL+"/reports", http.StatusServiceUnavailable, nil)
	getJSON(t, srv.URL+"/reports/"+res.Receipt.TxHash.String(), http.StatusServiceUnavailable, nil)
	resp, err := http.Post(srv.URL+"/batch", "application/json",
		strings.NewReader(`{"hashes":["`+res.Receipt.TxHash.String()+`"]}`))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("POST /batch = %d, want 503", resp.StatusCode)
	}

	// The pure detection path needs no archive and keeps answering.
	var rep core.ReportJSON
	getJSON(t, srv.URL+"/tx/"+res.Receipt.TxHash.String(), http.StatusOK, &rep)
	if !rep.IsAttack {
		t.Fatalf("detection degraded too: %+v", rep)
	}
}

// laggingSource reports an inflated head so the follower appears far
// behind a chain it has fully drained.
type laggingSource struct {
	inner follower.BlockSource
	head  uint64
}

func (s *laggingSource) HeadBlock() (uint64, error) { return s.head, nil }
func (s *laggingSource) BlockByNumber(n uint64) (*evm.Block, bool, error) {
	return s.inner.BlockByNumber(n)
}

func TestHealthzDegradedOnLag(t *testing.T) {
	sc, ok := attacks.ByName("Harvest Finance")
	if !ok {
		t.Fatal("scenario missing")
	}
	res, err := sc.Run()
	if err != nil {
		t.Fatal(err)
	}
	det := core.NewDetector(res.Env.Chain, res.Env.Registry, core.Options{
		Simplify: simplify.Options{WETH: res.Env.WETH},
	})
	arc, err := archive.Open(t.TempDir(), archive.Options{})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { arc.Close() })
	src := &laggingSource{inner: follower.ChainSource(res.Env.Chain), head: uint64(len(res.Env.Chain.Blocks()))}
	fol, err := follower.New(src, det, arc, follower.Options{})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { fol.Close() })
	if err := fol.CatchUp(); err != nil {
		t.Fatal(err)
	}

	s := New(res.Env.Chain, det)
	s.SetArchive(arc)
	s.SetFollower(fol)
	srv := httptest.NewServer(s.Handler())
	t.Cleanup(srv.Close)

	// Fully drained: healthy.
	var h Healthz
	getJSON(t, srv.URL+"/healthz", http.StatusOK, &h)
	if h.Status != "ok" || len(h.Degraded) != 0 {
		t.Fatalf("healthy follower reported %q %v", h.Status, h.Degraded)
	}

	// The head races ahead by more than the threshold while the
	// follower can't fetch the new blocks (the step fails, caching the
	// new head): degraded on lag alone, but the store-backed endpoints
	// (writer healthy) keep serving.
	src.head += DefaultDegradedLag + 10
	if _, err := fol.Step(); err == nil {
		t.Fatal("Step found blocks the source cannot serve")
	}
	getJSON(t, srv.URL+"/healthz", http.StatusServiceUnavailable, &h)
	if h.Status != "degraded" || len(h.Degraded) == 0 || !strings.Contains(h.Degraded[0], "lag") {
		t.Fatalf("lagging follower reported %q %v", h.Status, h.Degraded)
	}
	getJSON(t, srv.URL+"/reports", http.StatusOK, nil)

	// A raised threshold clears it.
	s2 := New(res.Env.Chain, det)
	s2.SetArchive(arc)
	s2.SetFollower(fol)
	s2.DegradedLag = 1000
	srv2 := httptest.NewServer(s2.Handler())
	t.Cleanup(srv2.Close)
	getJSON(t, srv2.URL+"/healthz", http.StatusOK, &h)
	if h.Status != "ok" {
		t.Fatalf("status = %q with a 1000-block threshold", h.Status)
	}
}
