// Protective limits for the HTTP listener. An http.Server with no
// timeouts lets one slow (or malicious) client hold a connection — and
// its goroutine — forever; a monitor that "serves heavy traffic" needs
// every connection bounded. NewHTTPServer is the one place those
// bounds are set, shared by cmd/leishen -serve and the serve benchmark.
package serve

import (
	"net/http"
	"time"
)

// Default HTTP listener limits. Read/write cover one full request and
// response (the biggest legitimate body is a MaxBatch ingest), idle
// bounds keep-alive parking, and MaxHeaderBytes caps header memory per
// connection.
const (
	DefaultReadTimeout    = 15 * time.Second
	DefaultWriteTimeout   = 60 * time.Second
	DefaultIdleTimeout    = 2 * time.Minute
	DefaultMaxHeaderBytes = 1 << 20
)

// HTTPConfig bounds the server's patience with each connection. Zero
// fields take the defaults above; there is deliberately no "unlimited"
// setting.
type HTTPConfig struct {
	// ReadTimeout is the maximum duration for reading one entire
	// request, headers and body.
	ReadTimeout time.Duration
	// WriteTimeout is the maximum duration from the end of the request
	// headers to the end of the response write.
	WriteTimeout time.Duration
	// IdleTimeout is the maximum time a keep-alive connection may sit
	// idle between requests.
	IdleTimeout time.Duration
	// MaxHeaderBytes caps the request header size.
	MaxHeaderBytes int
}

// withDefaults fills zero (and negative) fields with the defaults.
func (c HTTPConfig) withDefaults() HTTPConfig {
	if c.ReadTimeout <= 0 {
		c.ReadTimeout = DefaultReadTimeout
	}
	if c.WriteTimeout <= 0 {
		c.WriteTimeout = DefaultWriteTimeout
	}
	if c.IdleTimeout <= 0 {
		c.IdleTimeout = DefaultIdleTimeout
	}
	if c.MaxHeaderBytes <= 0 {
		c.MaxHeaderBytes = DefaultMaxHeaderBytes
	}
	return c
}

// NewHTTPServer returns an http.Server for s.Handler() on addr with
// every connection bound by cfg (zero fields defaulted). Callers run it
// with ListenAndServe as usual.
func (s *Server) NewHTTPServer(addr string, cfg HTTPConfig) *http.Server {
	cfg = cfg.withDefaults()
	return &http.Server{
		Addr:           addr,
		Handler:        s.Handler(),
		ReadTimeout:    cfg.ReadTimeout,
		WriteTimeout:   cfg.WriteTimeout,
		IdleTimeout:    cfg.IdleTimeout,
		MaxHeaderBytes: cfg.MaxHeaderBytes,
	}
}
