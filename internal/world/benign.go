package world

import (
	"fmt"
	"math/rand"
	"sort"

	"leishen/internal/attacks"
	"leishen/internal/core"
	"leishen/internal/dex"
	"leishen/internal/evm"
	"leishen/internal/flashloan"
	"leishen/internal/lending"
	"leishen/internal/token"
	"leishen/internal/types"
	"leishen/internal/uint256"
	"leishen/internal/vault"
)

// benignFleet holds the ordinary flash loan traffic generators —
// arbitrage, liquidation and no-op loans, the benign uses the paper lists
// (§I: "flash loans have been widely used for arbitrage, liquidation and
// collateral swaps") — one set per provider.
type benignFleet struct {
	env *attacks.Env
	// bots[provider] is a list of bot contract addresses.
	bots map[flashloan.Provider][]types.Address
	// callers[bot] is the EOA that drives it.
	callers map[types.Address]types.Address
	// buffered bots get their WETH/USDC working buffer refilled lazily.
	fills int

	// Liquidation venue: a lending market with a perpetually re-created
	// underwater borrower.
	liqPool     types.Address
	liqPair     types.Address
	liqAsset    types.Token
	liqBorrower types.Address
	liqBot      types.Address
	liqCaller   types.Address
}

// newBenignFleet deploys the benign bot contracts: per provider, one
// WETH arbitrage bot, one USDC arbitrage bot, and one no-op loan bot.
func newBenignFleet(env *attacks.Env) (*benignFleet, error) {
	f := &benignFleet{
		env:     env,
		bots:    make(map[flashloan.Provider][]types.Address),
		callers: make(map[types.Address]types.Address),
	}
	// Two WETH/USDC venues with independent pricing for the arb legs.
	sushi, err := env.NewPair(env.WETH, "50000", env.USDC, "100000000", "SushiSwap: WETH-USDC Pool")
	if err != nil {
		return nil, err
	}
	bancor, err := env.NewPair(env.WETH, "40000", env.USDC, "80000000", "Bancor: WETH-USDC Pool")
	if err != nil {
		return nil, err
	}

	providers := []flashloan.Provider{flashloan.ProviderUniswap, flashloan.ProviderAave, flashloan.ProviderDydx}
	for _, p := range providers {
		// WETH arb: borrow, WETH->USDC on Sushi, USDC->WETH on Bancor.
		arbSteps := []attacks.Step{
			attacks.StepPairSwap(sushi, env.WETH, env.USDC, attacks.Fixed(env.WETH.Units("40"))),
			attacks.StepPairSwap(bancor, env.USDC, env.WETH, attacks.AllBalance()),
		}
		arb, err := f.deployBot(p, env.WETH, "50", arbSteps)
		if err != nil {
			return nil, err
		}
		// No-op loan: borrow and repay (fee paid from buffer).
		noop, err := f.deployBot(p, env.WETH, "25", nil)
		if err != nil {
			return nil, err
		}
		f.bots[p] = []types.Address{arb, noop}
	}
	if err := f.buildLiquidationVenue(); err != nil {
		return nil, err
	}
	return f, nil
}

// buildLiquidationVenue deploys a lending market whose borrower the
// deployer repeatedly pushes underwater, feeding flash-loan-funded
// liquidations.
func (f *benignFleet) buildLiquidationVenue() error {
	env := f.env
	f.liqAsset = env.NewToken("cASSET", 18, "")
	var err error
	f.liqPair, err = env.NewPair(env.WETH, "2000", f.liqAsset, "2000000", "Compound: cASSET Pool")
	if err != nil {
		return err
	}
	f.liqPool, err = env.Chain.Deploy(env.Deployer, &lending.LendingPool{
		Collateral: f.liqAsset,
		Debt:       env.WETH,
		PriceOracle: lending.Oracle{
			Kind: lending.OraclePairSpot, Pair: f.liqPair, Base: f.liqAsset, Quote: env.WETH,
		},
		CollateralFactorBps: 9000,
		LiquidationBonusBps: 500,
	}, "Compound: cASSET Market")
	if err != nil {
		return err
	}
	if err := env.Fund(f.liqPool, env.WETH, "5000"); err != nil {
		return err
	}
	f.liqBorrower = env.Chain.NewEOA("")
	// Liquidation bot: borrow WETH, repay the victim's debt, seize
	// collateral, dump it on the pool, repay the flash loan.
	f.liqCaller = env.Chain.NewEOA("")
	steps := []attacks.Step{
		func(e *evm.Env) error {
			if _, err := e.Call(env.WETH.Address, "approve", uint256.Zero(), f.liqPool, env.WETH.Units("10")); err != nil {
				return err
			}
			_, err := e.Call(f.liqPool, "liquidate", uint256.Zero(), f.liqBorrower, env.WETH.Units("8"))
			return err
		},
		attacks.StepPairSwap(f.liqPair, f.liqAsset, env.WETH, attacks.AllBalance()),
	}
	f.liqBot, err = env.Chain.Deploy(f.liqCaller, &attacks.AttackContract{
		Loan: attacks.LoanSpec{
			Provider: flashloan.ProviderAave,
			Lender:   env.AavePool,
			Token:    env.WETH,
			Amount:   env.WETH.Units("10"),
			FeeBps:   9,
		},
		Steps:    steps,
		ProfitTo: f.liqCaller,
	}, "")
	if err != nil {
		return err
	}
	return env.Fund(f.liqBot, env.WETH, "50")
}

// primeLiquidation puts the designated borrower underwater: deposit
// collateral, borrow at the limit, then the deployer dumps the collateral
// asset to sink the oracle price.
func (f *benignFleet) primeLiquidation() error {
	env := f.env
	// A fresh borrower per round: leftovers from previous liquidations
	// would otherwise keep the account solvent.
	f.liqBorrower = env.Chain.NewEOA("")
	if err := env.Fund(f.liqBorrower, f.liqAsset, "12000"); err != nil {
		return err
	}
	if r := env.Chain.Send(f.liqBorrower, f.liqAsset.Address, "approve", f.liqPool, uint256.Max()); !r.Success {
		return fmt.Errorf("prime approve: %s", r.Err)
	}
	if r := env.Chain.Send(f.liqBorrower, f.liqPool, "depositCollateral", f.liqAsset.Units("12000")); !r.Success {
		return fmt.Errorf("prime deposit: %s", r.Err)
	}
	if r := env.Chain.Send(f.liqBorrower, f.liqPool, "borrow", env.WETH.Units("10")); !r.Success {
		return fmt.Errorf("prime borrow: %s", r.Err)
	}
	// Sink the collateral price ~10%.
	if err := env.Fund(env.Deployer, f.liqAsset, "110000"); err != nil {
		return err
	}
	if _, err := dex.SwapExactIn(env.Chain, f.liqPair, env.Deployer, f.liqAsset, env.WETH, f.liqAsset.Units("110000")); err != nil {
		return fmt.Errorf("prime dump: %w", err)
	}
	return nil
}

// fireLiquidation primes an underwater position and liquidates it with a
// flash loan, then restores the pool price.
func (f *benignFleet) fireLiquidation() (*evm.Receipt, error) {
	if err := f.primeLiquidation(); err != nil {
		return nil, err
	}
	r := f.env.Chain.Send(f.liqCaller, f.liqBot, "attack")
	if !r.Success {
		return nil, fmt.Errorf("liquidation bot failed: %s", r.Err)
	}
	// Restore the pool for the next round.
	return r, reseedPair(f.env, f.liqPair, f.env.WETH, "2000", f.liqAsset, "2000000")
}

// deployBot deploys a benign flash-loan bot with a working buffer.
func (f *benignFleet) deployBot(p flashloan.Provider, tok types.Token, borrow string, steps []attacks.Step) (types.Address, error) {
	env := f.env
	loan := attacks.LoanSpec{Provider: p, Token: tok, Amount: tok.Units(borrow)}
	switch p {
	case flashloan.ProviderUniswap:
		loan.Lender = env.FundingPair
		loan.FeeBps = 35
		loan.PairOther = env.USDC
		if tok.Address == env.USDC.Address {
			loan.PairOther = env.WETH
		}
	case flashloan.ProviderAave:
		loan.Lender = env.AavePool
		loan.FeeBps = 9
	case flashloan.ProviderDydx:
		loan.Lender = env.DydxSolo
	}
	caller := env.Chain.NewEOA("")
	bot, err := env.Chain.Deploy(caller, &attacks.AttackContract{
		Loan:  loan,
		Steps: steps,
		// No profit sweep: bots retain their working buffer.
		ProfitTo: caller,
	}, "")
	if err != nil {
		return types.Address{}, err
	}
	// Working buffer covering fees and arb slippage for many invocations.
	if err := env.Fund(bot, tok, "2000"); err != nil {
		return types.Address{}, err
	}
	f.callers[bot] = caller
	return bot, nil
}

// fire invokes one benign bot for the provider, refilling its buffer when
// it runs low. Roughly one in forty AAVE transactions is a liquidation.
func (f *benignFleet) fire(p flashloan.Provider, rng *rand.Rand) (*evm.Receipt, error) {
	if p == flashloan.ProviderAave && rng.Intn(40) == 0 {
		return f.fireLiquidation()
	}
	bots := f.bots[p]
	bot := bots[rng.Intn(len(bots))]
	r := f.env.Chain.Send(f.callers[bot], bot, "attack")
	if !r.Success {
		// Most likely a drained buffer: refill once and retry.
		if err := f.env.Fund(bot, f.env.WETH, "2000"); err != nil {
			return nil, err
		}
		f.fills++
		r = f.env.Chain.Send(f.callers[bot], bot, "attack")
		if !r.Success {
			return nil, fmt.Errorf("benign bot failed: %s", r.Err)
		}
	}
	return r, nil
}

// baitFleet drives the pattern-confusable benign strategies: SBS baits
// (unlabeled self-financed sandwiches) and MBS baits (labeled yield
// aggregator rebalances exploiting a deployer-maintained cross-pool
// spread).
type baitFleet struct {
	env *attacks.Env

	// SBS bait bot (self-financed sandwich on its own pool site).
	sbsSite *attacks.PoolSite
	sbsBot  types.Address
	sbsEOA  types.Address
	sbsLeft int

	// MBS bait strategies, one per aggregator application.
	strategies []types.Address
	operators  []types.Address
	poolCheap  types.Address
	poolRich   types.Address
	usdt2      types.Token
	mbsLeft    int
}

func newBaitFleet(env *attacks.Env, rng *rand.Rand) (*baitFleet, error) {
	f := &baitFleet{env: env, sbsLeft: sbsBaitCount, mbsLeft: mbsBaitCount}

	// SBS bait site and bot.
	var err error
	f.sbsSite, err = attacks.NewPoolSite(env, "SushiSwap", "SUSHIX", "1000", "1000000")
	if err != nil {
		return nil, err
	}
	f.sbsEOA = env.Chain.NewEOA("")
	loan := attacks.LoanSpec{
		Provider:  flashloan.ProviderUniswap,
		Lender:    env.FundingPair,
		Token:     env.WETH,
		PairOther: env.USDC,
		Amount:    env.WETH.Units("900"),
		FeeBps:    35,
	}
	const key = "bait:x"
	f.sbsBot, err = env.Chain.Deploy(f.sbsEOA, &attacks.AttackContract{
		Loan: loan,
		Steps: []attacks.Step{
			// Buy X, self-financed pump, sell the same X: matches SBS;
			// loses money overall (the buffer absorbs it), so manual
			// inspection marks it benign.
			attacks.StepPairSwapRecord(f.sbsSite.Pool, env.WETH, f.sbsSite.Asset, attacks.Fixed(env.WETH.Units("400")), key),
			attacks.StepPairSwap(f.sbsSite.Pool, env.WETH, f.sbsSite.Asset, attacks.Fixed(env.WETH.Units("180"))),
			attacks.StepPairSwapRecorded(f.sbsSite.Pool, f.sbsSite.Asset, env.WETH, key),
			attacks.StepPairSwap(f.sbsSite.Pool, f.sbsSite.Asset, env.WETH, attacks.AllBalance()),
		},
		ProfitTo: f.sbsEOA,
	}, "")
	if err != nil {
		return nil, err
	}
	if err := env.Fund(f.sbsBot, env.WETH, "5000"); err != nil {
		return nil, err
	}

	// MBS bait infrastructure: two SushiSwap USDC/USDT2 pools with a
	// maintained spread, rebalanced by labeled aggregator strategies.
	f.usdt2 = env.NewToken("USDT2", 6, "")
	f.poolCheap, err = env.NewPair(env.USDC, "2000000", f.usdt2, "2000000", "SushiSwap: USDT2 Pool A")
	if err != nil {
		return nil, err
	}
	f.poolRich, err = env.NewPair(env.USDC, "2100000", f.usdt2, "2000000", "SushiSwap: USDT2 Pool B")
	if err != nil {
		return nil, err
	}
	apps := make([]string, 0, len(AggregatorApps))
	for app := range AggregatorApps {
		apps = append(apps, app)
	}
	sort.Strings(apps)
	for _, app := range apps {
		operator := env.Chain.NewEOA(app + ": Deployer")
		strat, err := env.Chain.Deploy(operator, &vault.YieldAggregator{WorkingToken: env.USDC}, app+": Strategy")
		if err != nil {
			return nil, err
		}
		f.strategies = append(f.strategies, strat)
		f.operators = append(f.operators, operator)
	}
	return f, nil
}

// fire executes the next scheduled bait (SBS baits first, then MBS).
func (f *baitFleet) fire(rng *rand.Rand) (*evm.Receipt, *Truth, error) {
	if f.sbsLeft > 0 {
		f.sbsLeft--
		return f.fireSBS()
	}
	if f.mbsLeft > 0 {
		f.mbsLeft--
		return f.fireMBS(rng)
	}
	return nil, nil, fmt.Errorf("no baits left")
}

func (f *baitFleet) fireSBS() (*evm.Receipt, *Truth, error) {
	env := f.env
	r := env.Chain.Send(f.sbsEOA, f.sbsBot, "attack")
	if !r.Success {
		// Refill the loss buffer and retry once.
		if err := env.Fund(f.sbsBot, env.WETH, "5000"); err != nil {
			return nil, nil, err
		}
		r = env.Chain.Send(f.sbsEOA, f.sbsBot, "attack")
		if !r.Success {
			return nil, nil, fmt.Errorf("sbs bait failed: %s", r.Err)
		}
	}
	if err := f.sbsSite.Restore(); err != nil {
		return nil, nil, err
	}
	return r, &Truth{
		Kind:           KindSBSBait,
		ExpectDetected: []core.PatternKind{core.PatternSBS},
		Provider:       flashloan.ProviderUniswap,
		Contract:       f.sbsBot,
		Attacker:       f.sbsEOA,
	}, nil
}

func (f *baitFleet) fireMBS(rng *rand.Rand) (*evm.Receipt, *Truth, error) {
	env := f.env
	i := rng.Intn(len(f.strategies))
	strat, operator := f.strategies[i], f.operators[i]

	// Re-open the cross-pool spread the rebalance will close.
	if err := f.openSpread(); err != nil {
		return nil, nil, err
	}
	if r := env.Chain.Send(operator, strat, "queueRebalance",
		f.poolCheap, f.poolRich, f.usdt2, env.USDC.Units("6000"), uint64(3+rng.Intn(2))); !r.Success {
		return nil, nil, fmt.Errorf("queue: %s", r.Err)
	}
	r := env.Chain.Send(operator, strat, "flashRebalance", env.FundingPair, env.WETH, env.USDC.Units("40000"))
	if !r.Success {
		return nil, nil, fmt.Errorf("flashRebalance: %s", r.Err)
	}
	return r, &Truth{
		Kind:           KindMBSBait,
		ExpectDetected: []core.PatternKind{core.PatternMBS},
		AggInitiated:   true,
		Provider:       flashloan.ProviderUniswap,
		Contract:       strat,
		Attacker:       operator,
	}, nil
}

// openSpread restores pool A cheap / pool B rich by re-seeding both.
func (f *baitFleet) openSpread() error {
	env := f.env
	if err := reseedPair(env, f.poolCheap, env.USDC, "2000000", f.usdt2, "2000000"); err != nil {
		return err
	}
	return reseedPair(env, f.poolRich, env.USDC, "2100000", f.usdt2, "2000000")
}

// reseedPair burns the deployer's LP and re-adds exact reserves.
func reseedPair(env *attacks.Env, pair types.Address, a types.Token, amtA string, b types.Token, amtB string) error {
	lpAddr, err := evm.Ret0[types.Address](env.Chain.View(pair, "lpToken"))
	if err != nil {
		return err
	}
	lpTok := types.Token{Address: lpAddr, Symbol: "LP", Decimals: 18}
	lpBal, err := token.BalanceOf(env.Chain, lpTok, env.Deployer)
	if err != nil {
		return err
	}
	if !lpBal.IsZero() {
		if r := env.Chain.Send(env.Deployer, lpAddr, "transfer", pair, lpBal); !r.Success {
			return fmt.Errorf("reseed: move LP: %s", r.Err)
		}
		if r := env.Chain.Send(env.Deployer, pair, "burn", env.Deployer); !r.Success {
			return fmt.Errorf("reseed: burn: %s", r.Err)
		}
	}
	// Ensure the deployer holds at least the reseed amounts.
	for _, leg := range []struct {
		tok types.Token
		amt string
	}{{a, amtA}, {b, amtB}} {
		bal, err := token.BalanceOf(env.Chain, leg.tok, env.Deployer)
		if err != nil {
			return err
		}
		want := leg.tok.Units(leg.amt)
		if bal.Lt(want) {
			if err := env.Fund(env.Deployer, leg.tok, want.MustSub(bal).ToUnits(uint(leg.tok.Decimals))); err != nil {
				return err
			}
		}
	}
	return dex.AddLiquidity(env.Chain, pair, env.Deployer, a, a.Units(amtA), b, b.Units(amtB))
}
