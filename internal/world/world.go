package world

import (
	"fmt"
	"math/rand"
	"time"

	"leishen/internal/attacks"
	"leishen/internal/core"
	"leishen/internal/evm"
	"leishen/internal/flashloan"
	"leishen/internal/types"
	"leishen/internal/uint256"
)

// Kind classifies a corpus transaction's ground truth.
type Kind int

// Corpus transaction kinds.
const (
	// KindBenign is ordinary flash loan traffic (arbitrage, no-ops).
	KindBenign Kind = iota + 1
	// KindSBSBait is a benign self-financed sandwich that matches SBS.
	KindSBSBait
	// KindMBSBait is a benign yield-aggregator rebalance matching MBS.
	KindMBSBait
	// KindAttack is a true flpAttack.
	KindAttack
	// KindGrayAttack is a real, profitable manipulation below the paper's
	// pattern thresholds (detected only by relaxed thresholds).
	KindGrayAttack
	// KindGrayBait is benign sub-threshold traffic that relaxed
	// thresholds would flag as a false positive.
	KindGrayBait
)

// Truth is the labeled ground truth of one corpus transaction.
type Truth struct {
	Kind          Kind
	Known, Repeat bool
	// TruePatterns is what manual inspection confirms; ExpectDetected is
	// what LeiShen is engineered to report.
	TruePatterns   []core.PatternKind
	ExpectDetected []core.PatternKind
	// AggInitiated marks yield-aggregator-initiated transactions (the
	// §VI-C heuristic's trigger).
	AggInitiated bool
	// App / Asset / Attacker / Contract feed Table VI.
	App      string
	Asset    string
	Attacker types.Address
	Contract types.Address
	// Provider / Borrowed / BorrowToken / Profit / ProfitToken feed
	// Table VII and Fig. 1.
	Provider    flashloan.Provider
	Borrowed    uint256.Int
	BorrowToken types.Token
	Profit      uint256.Int
	ProfitToken types.Token
	// Time is the transaction timestamp (Figs. 1 and 8).
	Time time.Time
}

// Corpus is the generated evaluation world.
type Corpus struct {
	Env      *attacks.Env
	Receipts []*evm.Receipt
	Truth    map[types.Hash]*Truth
}

// Config parameterizes corpus generation.
type Config struct {
	// Seed drives all randomness; corpora are reproducible.
	Seed int64
	// ScalePct scales the benign traffic volume; 100 approximates the
	// paper's 272,984 flash loan transactions. Attack and bait counts are
	// absolute (they define the precision table). Default 10.
	ScalePct int
}

// CorpusStart is the first simulated week (AAVE's first flash loan was
// Jan 18, 2020).
var CorpusStart = time.Date(2020, 1, 13, 0, 0, 0, 0, time.UTC)

// attackSpec is one planned attack transaction.
type attackSpec struct {
	app      string
	class    attackClass
	known    bool
	repeat   bool
	month    string
	contract *plannedContract
}

// plannedContract is one attack contract: an attacker EOA, a site, fixed
// steps, and a loan.
type plannedContract struct {
	app      string
	attacker types.Address
	site     restorer
	asset    string
	addr     types.Address // deployed lazily
	build    func() (*attacks.AttackContract, error)
}

type restorer interface{ Restore() error }

// Generate builds the corpus.
func Generate(cfg Config) (*Corpus, error) {
	if cfg.ScalePct == 0 {
		cfg.ScalePct = 10
	}
	rng := rand.New(rand.NewSource(cfg.Seed))

	env, err := attacks.NewEnv(CorpusStart)
	if err != nil {
		return nil, err
	}
	env.Chain.SetBlockInterval(0) // time advances only between weeks
	c := &Corpus{Env: env, Truth: make(map[types.Hash]*Truth)}

	bots, err := newBenignFleet(env)
	if err != nil {
		return nil, fmt.Errorf("benign fleet: %w", err)
	}
	baits, err := newBaitFleet(env, rng)
	if err != nil {
		return nil, fmt.Errorf("bait fleet: %w", err)
	}
	grays, err := newGrayFleet(env, baits)
	if err != nil {
		return nil, fmt.Errorf("gray fleet: %w", err)
	}
	specs, err := planAttacks(env, rng)
	if err != nil {
		return nil, fmt.Errorf("attack plan: %w", err)
	}

	// Group attacks by month, baits spread over Aug 2020 – Dec 2021.
	attacksByMonth := make(map[string][]*attackSpec)
	for i := range specs {
		attacksByMonth[specs[i].month] = append(attacksByMonth[specs[i].month], &specs[i])
	}
	baitMonths := baitSchedule()

	for w := 0; w < corpusWeeks; w++ {
		weekTime := CorpusStart.AddDate(0, 0, 7*w)
		monthKey := weekTime.UTC().Format("2006-01")
		firstWeekOfMonth := weekTime.Day() <= 7

		// Benign traffic for this week (fixed provider order: map
		// iteration must not leak into the deterministic generation).
		weekly := weeklyBenign(w)
		for _, provider := range []flashloan.Provider{
			flashloan.ProviderAave, flashloan.ProviderDydx, flashloan.ProviderUniswap,
		} {
			scaled := weekly[provider] * cfg.ScalePct / 100
			for i := 0; i < scaled; i++ {
				r, err := bots.fire(provider, rng)
				if err != nil {
					return nil, fmt.Errorf("week %d benign: %w", w, err)
				}
				c.record(r, &Truth{Kind: KindBenign, Provider: provider, Time: r.Time})
			}
		}
		if !firstWeekOfMonth {
			env.Chain.MineBlock()
			env.Chain.AdvanceTime(7 * 24 * time.Hour)
			continue
		}

		// Attacks scheduled for this month.
		for _, spec := range attacksByMonth[monthKey] {
			r, truth, err := executeAttack(env, spec)
			if err != nil {
				return nil, fmt.Errorf("attack %s/%s: %w", spec.app, spec.month, err)
			}
			c.record(r, truth)
			if err := spec.contract.site.Restore(); err != nil {
				return nil, fmt.Errorf("restore %s: %w", spec.app, err)
			}
		}
		// Baits scheduled for this month.
		for i := 0; i < baitMonths[monthKey]; i++ {
			r, truth, err := baits.fire(rng)
			if err != nil {
				return nil, fmt.Errorf("bait %s: %w", monthKey, err)
			}
			c.record(r, truth)
		}
		// Up to two gray (sub-threshold) transactions per month.
		for i := 0; i < 2 && grays.remaining() > 0; i++ {
			r, truth, err := grays.fire(rng)
			if err != nil {
				return nil, fmt.Errorf("gray %s: %w", monthKey, err)
			}
			c.record(r, truth)
		}

		env.Chain.MineBlock()
		env.Chain.AdvanceTime(7 * 24 * time.Hour)
	}
	return c, nil
}

func (c *Corpus) record(r *evm.Receipt, t *Truth) {
	t.Time = r.Time
	c.Receipts = append(c.Receipts, r)
	c.Truth[r.TxHash] = t
}

// executeAttack deploys the contract on first use and fires the attack.
func executeAttack(env *attacks.Env, spec *attackSpec) (*evm.Receipt, *Truth, error) {
	pc := spec.contract
	var borrowedTok types.Token
	var borrowed uint256.Int
	if pc.addr.IsZero() {
		contract, err := pc.build()
		if err != nil {
			return nil, nil, err
		}
		contract.ProfitTo = pc.attacker
		addr, err := env.Chain.Deploy(pc.attacker, contract, "")
		if err != nil {
			return nil, nil, err
		}
		pc.addr = addr
	}
	r := env.Chain.Send(pc.attacker, pc.addr, "attack")
	if !r.Success {
		return nil, nil, fmt.Errorf("attack reverted: %s", r.Err)
	}
	loans := flashloan.Identify(r)
	var provider flashloan.Provider
	if len(loans) > 0 {
		provider = loans[0].Provider
		borrowed = loans[0].Amount
		if t, ok := env.Registry.Resolve(loans[0].Token); ok {
			borrowedTok = t
		}
	}
	// Profit: delta of the attacker's profit-token balance this tx. The
	// attacker EOA only ever receives sweeps, so the balance is a running
	// total; record per-attack profit via transfers in this receipt.
	profitTok, profit := sweptProfit(env, r, pc.attacker)
	return r, &Truth{
		Kind:           KindAttack,
		Known:          spec.known,
		Repeat:         spec.repeat,
		TruePatterns:   spec.class.truePatterns(),
		ExpectDetected: spec.class.detectedPatterns(),
		App:            spec.app,
		Asset:          pc.asset,
		Attacker:       pc.attacker,
		Contract:       pc.addr,
		Provider:       provider,
		Borrowed:       borrowed,
		BorrowToken:    borrowedTok,
		Profit:         profit,
		ProfitToken:    profitTok,
	}, nil
}

// sweptProfit sums the Transfer logs into the attacker EOA within the
// receipt (the profit sweep of the attack model's step 3).
func sweptProfit(env *attacks.Env, r *evm.Receipt, attacker types.Address) (types.Token, uint256.Int) {
	total := uint256.Zero()
	var tok types.Token
	for _, lg := range r.Logs {
		if lg.Event != "Transfer" || len(lg.Addrs) != 2 || lg.Addrs[1] != attacker {
			continue
		}
		if t, ok := env.Registry.Resolve(lg.Address); ok {
			tok = t
		}
		total = total.MustAdd(lg.Amounts[0])
	}
	return tok, total
}

// planAttacks expands the known and unknown plans into dated specs.
func planAttacks(env *attacks.Env, rng *rand.Rand) ([]attackSpec, error) {
	var specs []attackSpec

	// Known attacks (22) plus their identical repeats (11).
	knownIdx := 0
	for _, ks := range knownPlan() {
		pc, err := buildContract(env, rng, ks.app, ks.class)
		if err != nil {
			return nil, fmt.Errorf("known %s: %w", ks.app, err)
		}
		month := knownMonths[knownIdx%len(knownMonths)]
		knownIdx++
		specs = append(specs, attackSpec{
			app: ks.app, class: ks.class, known: true, month: month, contract: pc,
		})
		for rep := 0; rep < ks.repeats; rep++ {
			specs = append(specs, attackSpec{
				app: ks.app, class: ks.class, known: true, repeat: true,
				month: month, contract: pc,
			})
		}
	}

	// Unknown attacks (109) per the Table VI plan.
	var unknown []attackSpec
	for _, ap := range unknownPlan() {
		appSpecs, err := planApp(env, rng, ap)
		if err != nil {
			return nil, err
		}
		unknown = append(unknown, appSpecs...)
	}

	// Date the unknown attacks per the Fig. 8 monthly schedule.
	idx := 0
	for _, mu := range monthlyUnknown {
		for i := 0; i < mu.count && idx < len(unknown); i++ {
			unknown[idx].month = mu.month
			idx++
		}
	}
	if idx != len(unknown) {
		return nil, fmt.Errorf("monthly schedule covers %d of %d unknown attacks", idx, len(unknown))
	}
	specs = append(specs, unknown...)
	return specs, nil
}

// planApp builds one application's sites, attackers, contracts and attack
// specs according to its Table VI row.
func planApp(env *attacks.Env, rng *rand.Rand, ap appPlan) ([]attackSpec, error) {
	attackers := make([]types.Address, ap.attackers)
	for i := range attackers {
		attackers[i] = env.Chain.NewEOA("")
	}
	var sites []sitedAny
	for i := 0; i < ap.poolSites; i++ {
		sym := fmt.Sprintf("%s%d", tickerOf(ap.app), i+1)
		ps, err := attacks.NewPoolSite(env, ap.app, sym, "1000", "1000000")
		if err != nil {
			return nil, fmt.Errorf("%s pool site: %w", ap.app, err)
		}
		sites = append(sites, sitedAny{site: ps, pool: ps, asset: sym})
	}
	for i := 0; i < ap.vaultSites; i++ {
		sym := fmt.Sprintf("v%s%d", tickerOf(ap.app), i+1)
		vs, err := attacks.NewVaultSite(env, ap.app, sym, "20000000", 10)
		if err != nil {
			return nil, fmt.Errorf("%s vault site: %w", ap.app, err)
		}
		sites = append(sites, sitedAny{site: vs, vault: vs, asset: sym})
	}

	// Contract budget per class: proportional with largest-remainder
	// style correction so the total matches ap.contracts exactly.
	qs := orderedQuotaList(ap.quota)
	if ap.contracts < len(qs) {
		return nil, fmt.Errorf("%s: %d contracts cannot cover %d attack classes", ap.app, ap.contracts, len(qs))
	}
	total := ap.attacksTotal()
	ks := make([]int, len(qs))
	sum := 0
	for i, q := range qs {
		ks[i] = ap.contracts * q.n / total
		if ks[i] < 1 {
			ks[i] = 1
		}
		sum += ks[i]
	}
	for i := 0; sum > ap.contracts; i = (i + 1) % len(ks) {
		if ks[i] > 1 {
			ks[i]--
			sum--
		}
	}
	for i := 0; sum < ap.contracts; i = (i + 1) % len(ks) {
		ks[i]++
		sum++
	}

	poolIdx, vaultIdx := 0, 0
	contractCount := 0
	var specs []attackSpec
	for qi, q := range qs {
		var classContracts []*plannedContract
		for i := 0; i < ks[qi]; i++ {
			var st *sitedAny
			if q.class.usesVault() {
				st = pickSite(sites, true, &vaultIdx)
			} else {
				st = pickSite(sites, false, &poolIdx)
			}
			if st == nil {
				return nil, fmt.Errorf("%s: no site for class %d", ap.app, q.class)
			}
			pc := &plannedContract{
				app:      ap.app,
				attacker: attackers[contractCount%len(attackers)],
				site:     st.site,
				asset:    st.asset,
			}
			pc.build = contractBuilder(env, rng, q.class, st.pool, st.vault, sizeMult(rng))
			contractCount++
			classContracts = append(classContracts, pc)
		}
		for i := 0; i < q.n; i++ {
			specs = append(specs, attackSpec{
				app: ap.app, class: q.class,
				contract: classContracts[i%len(classContracts)],
			})
		}
	}
	return specs, nil
}

// buildContract creates a dedicated site + contract for a known attack.
func buildContract(env *attacks.Env, rng *rand.Rand, app string, class attackClass) (*plannedContract, error) {
	const mult = 1.0
	pc := &plannedContract{app: app, attacker: env.Chain.NewEOA("")}
	if class.usesVault() {
		vs, err := attacks.NewVaultSite(env, app, "v"+tickerOf(app), "20000000", 10)
		if err != nil {
			return nil, err
		}
		pc.site = vs
		pc.asset = "v" + tickerOf(app)
		pc.build = contractBuilder(env, rng, class, nil, vs, mult)
		return pc, nil
	}
	ps, err := attacks.NewPoolSite(env, app, tickerOf(app), "1000", "1000000")
	if err != nil {
		return nil, err
	}
	pc.site = ps
	pc.asset = tickerOf(app)
	pc.build = contractBuilder(env, rng, class, ps, nil, mult)
	return pc, nil
}

// contractBuilder returns a lazy AttackContract factory for a class.
func contractBuilder(env *attacks.Env, rng *rand.Rand, class attackClass, pool *attacks.PoolSite, vaultSite *attacks.VaultSite, mult float64) func() (*attacks.AttackContract, error) {
	provider := pickProvider(rng)
	buys := 5 + rng.Intn(4)
	// Five or more rounds would let the skew legs' fee drift form a
	// monotone >=5-buy run and spuriously trip KRP; stay at 3-4.
	rounds := 3 + rng.Intn(2)
	return func() (*attacks.AttackContract, error) {
		var steps []attacks.Step
		var loanTok types.Token
		var loanAmt uint256.Int
		switch class {
		case classKRP:
			// KRP scales down to near-dust attacks (the paper's minimum
			// profit is $23); below ~1 WETH per tranche the desk spread
			// eats the price margin and the attack would not profit.
			size := 100 * mult * 0.3
			if size < 2 {
				size = 2
			}
			tranche := fmtAmt(size)
			steps = pool.KRPSteps(buys, tranche)
			loanTok = env.WETH
			loanAmt = env.WETH.Units(fmtAmt(size*float64(buys) + 1))
		case classSBS:
			// The pump must clear the 28% volatility bar relative to the
			// fixed pool depth, so SBS sizes stay at 1x or above.
			m := mult
			if m < 1 {
				m = 1
			}
			steps = pool.SBSSteps(fmtAmt(550*m), fmtAmt(130*m))
			loanTok = env.WETH
			loanAmt = env.WETH.Units(fmtAmt(800 * m))
		case classMBS:
			dep := 5_000_000 * mult
			if dep > 25_000_000 {
				dep = 25_000_000
			}
			// Below ~2M the stable-pool skew fees exceed the vault gain
			// and the attack would not profit.
			if dep < 2_000_000 {
				dep = 2_000_000
			}
			steps = vaultSite.MBSSteps(rounds, fmtAmt(dep), "4000000")
			loanTok = env.USDC
			loanAmt = env.USDC.Units(fmtAmt(dep + 5_000_000))
		case classDualTrue:
			steps = vaultSite.DualSteps("3000000", "19000000", "5000000", true)
			loanTok = env.USDC
			loanAmt = env.USDC.Units("30000000")
		case classDualSpurious:
			steps = vaultSite.DualSteps("3000000", "19000000", "5000000", false)
			loanTok = env.USDC
			loanAmt = env.USDC.Units("26000000")
		default:
			return nil, fmt.Errorf("unknown class %d", class)
		}
		loan := attacks.LoanSpec{Provider: provider, Token: loanTok, Amount: loanAmt}
		switch provider {
		case flashloan.ProviderUniswap:
			loan.Lender = env.FundingPair
			loan.FeeBps = 35
			loan.PairOther = env.USDC
			if loanTok.Address == env.USDC.Address {
				loan.PairOther = env.WETH
			}
		case flashloan.ProviderAave:
			loan.Lender = env.AavePool
			loan.FeeBps = 9
		case flashloan.ProviderDydx:
			loan.Lender = env.DydxSolo
		}
		return &attacks.AttackContract{
			Loan:         loan,
			Steps:        steps,
			ProfitTokens: []types.Token{loanTok},
		}, nil
	}
}

func pickProvider(rng *rand.Rand) flashloan.Provider {
	switch v := rng.Float64(); {
	case v < 0.6:
		return flashloan.ProviderUniswap
	case v < 0.85:
		return flashloan.ProviderAave
	default:
		return flashloan.ProviderDydx
	}
}

// sizeMult draws a heavy-tailed size multiplier in ~[0.01, 10]: most
// attacks are small, a few are whales (the paper's profit spread covers
// five orders of magnitude).
func sizeMult(rng *rand.Rand) float64 {
	u := rng.Float64()
	m := 0.01
	for i := 0; i < 10; i++ {
		if u > float64(i)/10 {
			m *= 2
		}
	}
	return m / 2
}

func fmtAmt(v float64) string { return fmt.Sprintf("%.2f", v) }

// tickerOf derives a short asset ticker from an app name.
func tickerOf(app string) string {
	up := make([]byte, 0, 4)
	for i := 0; i < len(app) && len(up) < 4; i++ {
		ch := app[i]
		if ch >= 'a' && ch <= 'z' {
			ch -= 'a' - 'A'
		}
		if ch >= 'A' && ch <= 'Z' {
			up = append(up, ch)
		}
	}
	return string(up)
}

// baitSchedule spreads the SBS and MBS baits over the corpus months.
func baitSchedule() map[string]int {
	months := []string{
		"2020-08", "2020-09", "2020-10", "2020-11", "2020-12",
		"2021-01", "2021-02", "2021-03", "2021-04", "2021-05", "2021-06",
		"2021-07", "2021-08", "2021-09", "2021-10", "2021-11", "2021-12",
		"2022-01", "2022-02",
	}
	out := make(map[string]int, len(months))
	total := sbsBaitCount + mbsBaitCount
	for i := 0; i < total; i++ {
		out[months[i%len(months)]]++
	}
	return out
}

// VerifyPlan sanity-checks the static plan totals against the paper's
// Table V and Table VI targets; the world test calls it.
func VerifyPlan() error {
	classTotals := map[attackClass]int{}
	for _, ks := range knownPlan() {
		classTotals[ks.class] += 1 + ks.repeats
	}
	repeatTotal := 0
	for _, ks := range knownPlan() {
		repeatTotal += ks.repeats
	}
	if repeatTotal != 11 {
		return fmt.Errorf("repeats = %d, want 11", repeatTotal)
	}
	unknownTotal := 0
	for _, ap := range unknownPlan() {
		for c, n := range ap.quota {
			classTotals[c] += n
			unknownTotal += n
		}
	}
	if unknownTotal != 109 {
		return fmt.Errorf("unknown attacks = %d, want 109", unknownTotal)
	}
	krp := classTotals[classKRP]
	sbsRows := classTotals[classSBS] + classTotals[classDualTrue] + classTotals[classDualSpurious]
	mbsTP := classTotals[classMBS] + classTotals[classDualTrue]
	mbsFP := classTotals[classDualSpurious] + mbsBaitCount
	if krp != 21 {
		return fmt.Errorf("KRP rows = %d, want 21", krp)
	}
	if sbsRows != 68 {
		return fmt.Errorf("SBS TP rows = %d, want 68", sbsRows)
	}
	if got := sbsRows + sbsBaitCount; got != 79 {
		return fmt.Errorf("SBS N = %d, want 79", got)
	}
	if mbsTP != 60 {
		return fmt.Errorf("MBS TP rows = %d, want 60", mbsTP)
	}
	if mbsFP != 47 {
		return fmt.Errorf("MBS FP rows = %d, want 47", mbsFP)
	}
	monthly := 0
	for _, mu := range monthlyUnknown {
		monthly += mu.count
	}
	if monthly != 109 {
		return fmt.Errorf("monthly schedule = %d, want 109", monthly)
	}
	return nil
}

func min(a, b int) int {
	if a < b {
		return a
	}
	return b
}

// attacksTotal sums the app's attack quota.
func (ap appPlan) attacksTotal() int {
	t := 0
	for _, n := range ap.quota {
		t += n
	}
	return t
}

// quotaEntry is one class's quota.
type quotaEntry struct {
	class attackClass
	n     int
}

// orderedQuotaList returns quota entries in deterministic class order.
func orderedQuotaList(q map[attackClass]int) []quotaEntry {
	var out []quotaEntry
	for _, c := range []attackClass{classKRP, classSBS, classMBS, classDualTrue, classDualSpurious} {
		if n := q[c]; n > 0 {
			out = append(out, quotaEntry{class: c, n: n})
		}
	}
	return out
}

// sitedAny bundles a site with its concrete flavor for planning.
type sitedAny struct {
	site  restorer
	pool  *attacks.PoolSite
	vault *attacks.VaultSite
	asset string
}

// pickSite round-robins over sites of the wanted flavor.
func pickSite(sites []sitedAny, wantVault bool, idx *int) *sitedAny {
	n := len(sites)
	if n == 0 {
		return nil
	}
	for try := 0; try < n; try++ {
		s := &sites[(*idx+try)%n]
		if wantVault && s.vault != nil {
			*idx = (*idx + try + 1) % n
			return s
		}
		if !wantVault && s.pool != nil {
			*idx = (*idx + try + 1) % n
			return s
		}
	}
	return nil
}
