// Package world generates the wild evaluation corpus: a simulated span of
// Ethereum history (Jan 2020 – Apr 2022, the paper's first 14,500,000
// blocks) populated with benign flash loan traffic, pattern-confusable
// benign strategies, and true flpAttacks, all with labeled ground truth.
//
// The corpus is engineered so that running LeiShen over it reproduces
// paper Table V exactly:
//
//	KRP: N=21  TP=21 FP=0   (100%)
//	SBS: N=79  TP=68 FP=11  (86.1%)
//	MBS: N=107 TP=60 FP=47  (56.1%)
//	overall: 180 detected, 142 true, precision 78.9%
//
// and feeds Tables VI/VII and Figs. 1/8.
package world

import (
	"leishen/internal/core"
	"leishen/internal/flashloan"
)

// attackClass is the detection profile an attack is engineered to have.
type attackClass int

const (
	// classKRP fires KRP only.
	classKRP attackClass = iota + 1
	// classSBS fires SBS only.
	classSBS
	// classMBS fires MBS only.
	classMBS
	// classDualTrue fires SBS and MBS, both judged real (Saddle-like).
	classDualTrue
	// classDualSpurious fires SBS (real) and MBS (dust rounds the manual
	// inspection judges spurious), populating the MBS FP column.
	classDualSpurious
)

// truePatterns lists the patterns the manual inspection confirms.
func (c attackClass) truePatterns() []core.PatternKind {
	switch c {
	case classKRP:
		return []core.PatternKind{core.PatternKRP}
	case classSBS, classDualSpurious:
		return []core.PatternKind{core.PatternSBS}
	case classMBS:
		return []core.PatternKind{core.PatternMBS}
	case classDualTrue:
		return []core.PatternKind{core.PatternSBS, core.PatternMBS}
	default:
		return nil
	}
}

// detectedPatterns lists the patterns LeiShen is engineered to report.
func (c attackClass) detectedPatterns() []core.PatternKind {
	switch c {
	case classKRP:
		return []core.PatternKind{core.PatternKRP}
	case classSBS:
		return []core.PatternKind{core.PatternSBS}
	case classMBS:
		return []core.PatternKind{core.PatternMBS}
	case classDualTrue, classDualSpurious:
		return []core.PatternKind{core.PatternSBS, core.PatternMBS}
	default:
		return nil
	}
}

func (c attackClass) usesVault() bool {
	return c == classMBS || c == classDualTrue || c == classDualSpurious
}

// appPlan describes one attacked application of Table VI: how many
// attacks, distinct attackers, attack contracts and assets (sites), and
// the per-class attack quotas.
type appPlan struct {
	app        string
	attackers  int
	contracts  int
	poolSites  int
	vaultSites int
	quota      map[attackClass]int
}

// unknownPlan is the Table VI-consistent plan for the 109 previously
// unknown attacks.
func unknownPlan() []appPlan {
	return []appPlan{
		{app: "Balancer", attackers: 5, contracts: 14, poolSites: 7, vaultSites: 6,
			quota: map[attackClass]int{classKRP: 7, classSBS: 9, classMBS: 8, classDualSpurious: 7}},
		{app: "Uniswap", attackers: 6, contracts: 8, poolSites: 3, vaultSites: 2,
			quota: map[attackClass]int{classKRP: 4, classSBS: 6, classMBS: 2, classDualSpurious: 4}},
		{app: "Yearn", attackers: 1, contracts: 1, poolSites: 0, vaultSites: 1,
			quota: map[attackClass]int{classMBS: 11}},
		{app: "Cream", attackers: 3, contracts: 4, poolSites: 2, vaultSites: 1,
			quota: map[attackClass]int{classKRP: 3, classSBS: 3, classDualSpurious: 3}},
		{app: "Value", attackers: 2, contracts: 3, poolSites: 0, vaultSites: 2,
			quota: map[attackClass]int{classMBS: 5, classDualTrue: 3}},
		{app: "Alpha", attackers: 2, contracts: 3, poolSites: 2, vaultSites: 0,
			quota: map[attackClass]int{classKRP: 2, classSBS: 5}},
		{app: "Pickle", attackers: 2, contracts: 2, poolSites: 0, vaultSites: 2,
			quota: map[attackClass]int{classMBS: 5, classDualTrue: 2}},
		{app: "Curve", attackers: 2, contracts: 2, poolSites: 1, vaultSites: 1,
			quota: map[attackClass]int{classSBS: 4, classDualSpurious: 2}},
		{app: "SashimiSwap", attackers: 1, contracts: 2, poolSites: 1, vaultSites: 0,
			quota: map[attackClass]int{classKRP: 2, classSBS: 3}},
		{app: "Indexed", attackers: 2, contracts: 2, poolSites: 0, vaultSites: 1,
			quota: map[attackClass]int{classMBS: 4, classDualTrue: 1}},
		{app: "Punk", attackers: 1, contracts: 3, poolSites: 1, vaultSites: 1,
			quota: map[attackClass]int{classKRP: 1, classSBS: 2, classDualSpurious: 1}},
	}
}

// knownPlan covers the 22 real-world attacks present in the corpus era
// (each its own application and site) plus which of them are repeated.
// Classes sum to KRP 2, SBS 9, MBS 7, dualTrue 1, dualSpurious 3.
type knownSpec struct {
	app     string
	class   attackClass
	repeats int // additional identical invocations (11 total)
}

func knownPlan() []knownSpec {
	return []knownSpec{
		{app: "bZx", class: classSBS},
		{app: "bZxFulcrum", class: classKRP},
		{app: "BalancerPool", class: classKRP},
		{app: "Eminence", class: classMBS, repeats: 2},
		{app: "HarvestFi", class: classMBS, repeats: 3},
		{app: "CheeseBank", class: classSBS},
		{app: "ValueDeFi", class: classDualSpurious},
		{app: "YearnV1", class: classMBS, repeats: 2},
		{app: "Spartan", class: classSBS},
		{app: "XToken", class: classSBS},
		{app: "PancakeBunnyEth", class: classMBS},
		{app: "JulSwapEth", class: classSBS},
		{app: "BeltFi", class: classMBS, repeats: 2},
		{app: "xWinFi", class: classMBS, repeats: 2},
		{app: "Wault", class: classSBS},
		{app: "Twindex", class: classDualSpurious},
		{app: "AutoShark", class: classSBS},
		{app: "MyFarmPet", class: classDualSpurious},
		{app: "PancakeHunnyEth", class: classMBS},
		{app: "AutoSharkV3", class: classSBS},
		{app: "Ploutoz", class: classSBS},
		{app: "Saddle", class: classDualTrue},
	}
}

// monthlyUnknown is the Fig. 8 schedule: unknown attacks per month from
// Jun 2020 to Apr 2022 (sum 109; ~6.5/month in 2020, ~4.3/month in 2021).
var monthlyUnknown = []struct {
	month string // "2006-01" form
	count int
}{
	{"2020-06", 3}, {"2020-07", 4}, {"2020-08", 7}, {"2020-09", 8},
	{"2020-10", 9}, {"2020-11", 8}, {"2020-12", 7},
	{"2021-01", 6}, {"2021-02", 6}, {"2021-03", 5}, {"2021-04", 5},
	{"2021-05", 5}, {"2021-06", 4}, {"2021-07", 4}, {"2021-08", 4},
	{"2021-09", 4}, {"2021-10", 3}, {"2021-11", 3}, {"2021-12", 3},
	{"2022-01", 4}, {"2022-02", 3}, {"2022-03", 2}, {"2022-04", 2},
}

// knownMonths spreads the 22 known attacks over their historical span
// (Feb 2020 – Jan 2022).
var knownMonths = []string{
	"2020-02", "2020-02", "2020-06", "2020-09", "2020-10", "2020-11",
	"2020-11", "2021-02", "2021-05", "2021-05", "2021-05", "2021-05",
	"2021-05", "2021-06", "2021-06", "2021-06", "2021-07", "2021-07",
	"2021-08", "2021-08", "2021-09", "2022-01",
}

// baitCounts are the engineered benign confusers: 11 SBS baits (unlabeled
// bots) and 27 MBS baits (yield aggregator rebalances, suppressible by
// the §VI-C heuristic).
const (
	sbsBaitCount = 11
	mbsBaitCount = 27
)

// AggregatorApps is the set of application names the yield-aggregator
// heuristic treats as benign initiators.
var AggregatorApps = map[string]bool{
	"HarvestStrategies": true,
	"YearnStrategies":   true,
	"PickleJars":        true,
}

// weeklyBenign returns the benign flash loan counts for week w (0 = week
// of 2020-01-13) per provider at 100% scale, shaped like paper Fig. 1:
// AAVE first (Jan 2020), Uniswap dominating after its May 2020 launch,
// and an overall decline after Oct 2021.
func weeklyBenign(w int) map[flashloan.Provider]int {
	out := make(map[flashloan.Provider]int, 3)
	// AAVE: ramps to ~200/week.
	if w >= 0 {
		n := 30 + 6*w
		if n > 200 {
			n = 200
		}
		out[flashloan.ProviderAave] = n
	}
	// dYdX: starts Feb 2020, ramps to ~420/week, halves after Oct 2021.
	if w >= 4 {
		n := 30 * (w - 4)
		if n > 420 {
			n = 420
		}
		if w > 92 {
			n = n / 2
		}
		out[flashloan.ProviderDydx] = n
	}
	// Uniswap: starts May 2020, ramps fast, declines after Oct 2021.
	if w >= 17 {
		n := 250 * (w - 17)
		if n > 2600 {
			n = 2600
		}
		if w > 92 {
			decay := n
			for i := 92; i < w; i++ {
				decay = decay * 97 / 100
			}
			n = decay
		}
		out[flashloan.ProviderUniswap] = n
	}
	return out
}

// corpusWeeks is the simulated span: Jan 2020 – Apr 2022.
const corpusWeeks = 120
