package world

import (
	"fmt"
	"math/rand"

	"leishen/internal/attacks"
	"leishen/internal/core"
	"leishen/internal/evm"
	"leishen/internal/flashloan"
	"leishen/internal/types"
	"leishen/internal/vault"
)

// Gray traffic sits just below the paper's pattern thresholds; it is what
// the §VII discussion is about: relaxing the thresholds (KRP 5→3 buys,
// SBS 28%→10%, MBS 3→2 rounds) detects more — some of it real attacks,
// some of it new false positives.
//
//   - sub-KRP: 4-buy batched manipulations — real, profitable attacks that
//     the 5-buy threshold misses (XToken-1/PancakeBunny shapes);
//   - sub-MBS: 2-round vault manipulations — real attacks below the
//     3-round bar (the Value DeFi shape);
//   - sub-SBS: unprofitable self-financed sandwiches with ~15% pumps —
//     detected only by a relaxed volatility bar, and judged FP on manual
//     inspection (no net profit);
//   - 2-round rebalances: honest aggregator strategies that a 2-round MBS
//     bar would flag.
const (
	graySubKRPCount    = 8
	graySubMBSCount    = 8
	graySubSBSCount    = 8
	grayRebalanceCount = 6
)

// grayFleet drives the sub-threshold traffic.
type grayFleet struct {
	env *attacks.Env

	krpSite  *attacks.PoolSite
	krpBot   types.Address
	krpEOA   types.Address
	krpLeft  int
	mbsSite  *attacks.VaultSite
	mbsBot   types.Address
	mbsEOA   types.Address
	mbsLeft  int
	sbsSite  *attacks.PoolSite
	sbsBot   types.Address
	sbsEOA   types.Address
	sbsLeft  int
	rebStrat types.Address
	rebOp    types.Address
	rebLeft  int
	rebPools *baitFleet // reuses the bait fleet's spread pools
}

func newGrayFleet(env *attacks.Env, baits *baitFleet) (*grayFleet, error) {
	f := &grayFleet{
		env:      env,
		krpLeft:  graySubKRPCount,
		mbsLeft:  graySubMBSCount,
		sbsLeft:  graySubSBSCount,
		rebLeft:  grayRebalanceCount,
		rebPools: baits,
	}
	var err error
	// Sub-KRP: 4 rising buys then a desk dump — profitable, sub-threshold.
	if f.krpSite, err = attacks.NewPoolSite(env, "DODO", "DODOX", "1000", "1000000"); err != nil {
		return nil, err
	}
	if f.krpEOA, f.krpBot, err = deployGrayBot(env, flashloan.ProviderDydx, env.WETH, "450",
		f.krpSite.KRPSteps(4, "100")); err != nil {
		return nil, err
	}
	// Sub-MBS: 2 profitable vault rounds (the Value DeFi shape).
	if f.mbsSite, err = attacks.NewVaultSite(env, "Swerve", "swUSD", "20000000", 10); err != nil {
		return nil, err
	}
	if f.mbsEOA, f.mbsBot, err = deployGrayBot(env, flashloan.ProviderAave, env.USDC, "12000000",
		f.mbsSite.MBSSteps(2, "5000000", "4000000")); err != nil {
		return nil, err
	}
	// Sub-SBS: symmetric sandwich with a ~15% pump; loses money (buffer
	// absorbs it) so inspection judges any relaxed-threshold match an FP.
	if f.sbsSite, err = attacks.NewPoolSite(env, "Mooniswap", "MOONX", "1000", "1000000"); err != nil {
		return nil, err
	}
	const key = "gray:x"
	subSBSSteps := []attacks.Step{
		attacks.StepPairSwapRecord(f.sbsSite.Pool, env.WETH, f.sbsSite.Asset, attacks.Fixed(env.WETH.Units("100")), key),
		attacks.StepPairSwap(f.sbsSite.Pool, env.WETH, f.sbsSite.Asset, attacks.Fixed(env.WETH.Units("60"))),
		attacks.StepPairSwapRecorded(f.sbsSite.Pool, f.sbsSite.Asset, env.WETH, key),
		attacks.StepPairSwap(f.sbsSite.Pool, f.sbsSite.Asset, env.WETH, attacks.AllBalance()),
	}
	if f.sbsEOA, f.sbsBot, err = deployGrayBot(env, flashloan.ProviderUniswap, env.WETH, "200", subSBSSteps); err != nil {
		return nil, err
	}
	// 2-round honest rebalance from a labeled aggregator.
	f.rebOp = env.Chain.NewEOA("IdleStrategies: Deployer")
	if f.rebStrat, err = env.Chain.Deploy(f.rebOp, &vault.YieldAggregator{WorkingToken: env.USDC}, "IdleStrategies: Strategy"); err != nil {
		return nil, err
	}
	return f, nil
}

// deployGrayBot deploys a buffered gray flash-loan contract.
func deployGrayBot(env *attacks.Env, p flashloan.Provider, tok types.Token, borrow string, steps []attacks.Step) (eoa, bot types.Address, err error) {
	loan := attacks.LoanSpec{Provider: p, Token: tok, Amount: tok.Units(borrow)}
	switch p {
	case flashloan.ProviderUniswap:
		loan.Lender = env.FundingPair
		loan.FeeBps = 35
		loan.PairOther = env.USDC
		if tok.Address == env.USDC.Address {
			loan.PairOther = env.WETH
		}
	case flashloan.ProviderAave:
		loan.Lender = env.AavePool
		loan.FeeBps = 9
	case flashloan.ProviderDydx:
		loan.Lender = env.DydxSolo
	}
	eoa = env.Chain.NewEOA("")
	bot, err = env.Chain.Deploy(eoa, &attacks.AttackContract{
		Loan:     loan,
		Steps:    steps,
		ProfitTo: eoa,
	}, "")
	if err != nil {
		return types.Address{}, types.Address{}, err
	}
	// Loss/fee buffer.
	buffer := "3000"
	if tok.Address == env.USDC.Address {
		buffer = "300000"
	}
	if err := env.Fund(bot, tok, buffer); err != nil {
		return types.Address{}, types.Address{}, err
	}
	return eoa, bot, nil
}

// remaining reports how many gray transactions are still scheduled.
func (f *grayFleet) remaining() int {
	return f.krpLeft + f.mbsLeft + f.sbsLeft + f.rebLeft
}

// fire executes the next gray transaction.
func (f *grayFleet) fire(rng *rand.Rand) (*evm.Receipt, *Truth, error) {
	env := f.env
	run := func(eoa, bot types.Address, site restorer, kind Kind, pats []core.PatternKind) (*evm.Receipt, *Truth, error) {
		r := env.Chain.Send(eoa, bot, "attack")
		if !r.Success {
			return nil, nil, fmt.Errorf("gray tx failed: %s", r.Err)
		}
		if site != nil {
			if err := site.Restore(); err != nil {
				return nil, nil, err
			}
		}
		truth := &Truth{Kind: kind, Attacker: eoa, Contract: bot}
		for _, p := range pats {
			truth.TruePatterns = append(truth.TruePatterns, p)
		}
		return r, truth, nil
	}
	switch {
	case f.krpLeft > 0:
		f.krpLeft--
		return run(f.krpEOA, f.krpBot, f.krpSite, KindGrayAttack, []core.PatternKind{core.PatternKRP})
	case f.mbsLeft > 0:
		f.mbsLeft--
		return run(f.mbsEOA, f.mbsBot, f.mbsSite, KindGrayAttack, []core.PatternKind{core.PatternMBS})
	case f.sbsLeft > 0:
		f.sbsLeft--
		return run(f.sbsEOA, f.sbsBot, f.sbsSite, KindGrayBait, nil)
	case f.rebLeft > 0:
		f.rebLeft--
		if err := f.rebPools.openSpread(); err != nil {
			return nil, nil, err
		}
		if r := env.Chain.Send(f.rebOp, f.rebStrat, "queueRebalance",
			f.rebPools.poolCheap, f.rebPools.poolRich, f.rebPools.usdt2, env.USDC.Units("6000"), uint64(2)); !r.Success {
			return nil, nil, fmt.Errorf("gray queue: %s", r.Err)
		}
		r := env.Chain.Send(f.rebOp, f.rebStrat, "flashRebalance", env.FundingPair, env.WETH, env.USDC.Units("30000"))
		if !r.Success {
			return nil, nil, fmt.Errorf("gray rebalance: %s", r.Err)
		}
		return r, &Truth{Kind: KindGrayBait, AggInitiated: true, Attacker: f.rebOp, Contract: f.rebStrat}, nil
	default:
		return nil, nil, fmt.Errorf("no gray traffic left")
	}
}
