package world

import (
	"testing"

	"leishen/internal/core"
	"leishen/internal/simplify"
)

func TestVerifyPlan(t *testing.T) {
	if err := VerifyPlan(); err != nil {
		t.Fatal(err)
	}
}

// testCorpus caches one generated corpus across tests in this package.
var cachedCorpus *Corpus

func corpus(t *testing.T) *Corpus {
	t.Helper()
	if cachedCorpus != nil {
		return cachedCorpus
	}
	c, err := Generate(Config{Seed: 7, ScalePct: 2})
	if err != nil {
		t.Fatalf("generate: %v", err)
	}
	cachedCorpus = c
	return c
}

func detector(c *Corpus, heuristic bool) *core.Detector {
	return core.NewDetector(c.Env.Chain, c.Env.Registry, core.Options{
		Simplify:                 simplify.Options{WETH: c.Env.WETH},
		YieldAggregatorHeuristic: heuristic,
		YieldAggregatorApps:      AggregatorApps,
	})
}

// TestTableVWildDetection reproduces paper Table V exactly: detection
// counts per pattern with the planned TP/FP split.
func TestTableVWildDetection(t *testing.T) {
	c := corpus(t)
	det := detector(c, false)

	type counts struct{ n, tp int }
	perPattern := map[core.PatternKind]*counts{
		core.PatternKRP: {}, core.PatternSBS: {}, core.PatternMBS: {},
	}
	detected, trueDetected := 0, 0

	for _, r := range c.Receipts {
		rep := det.Inspect(r)
		truth := c.Truth[r.TxHash]
		if truth == nil {
			t.Fatalf("missing truth for %s", r.TxHash.Short())
		}
		// Engineering check: detection matches the planned profile.
		got := map[core.PatternKind]bool{}
		for _, m := range rep.Matches {
			got[m.Kind] = true
		}
		want := map[core.PatternKind]bool{}
		for _, p := range truth.ExpectDetected {
			want[p] = true
		}
		for _, k := range []core.PatternKind{core.PatternKRP, core.PatternSBS, core.PatternMBS} {
			if got[k] != want[k] {
				t.Fatalf("tx %s kind=%d app=%s: pattern %s detected=%v want %v\n%s",
					r.TxHash.Short(), truth.Kind, truth.App, k, got[k], want[k], rep.Detail())
			}
		}
		if !rep.IsAttack {
			continue
		}
		detected++
		truePat := map[core.PatternKind]bool{}
		for _, p := range truth.TruePatterns {
			truePat[p] = true
		}
		if truth.Kind == KindAttack {
			trueDetected++
		}
		// The paper counts detections per transaction per pattern; a
		// transaction matching MBS on two target tokens is one MBS row.
		for kind := range got {
			pc := perPattern[kind]
			pc.n++
			if truth.Kind == KindAttack && truePat[kind] {
				pc.tp++
			}
		}
	}

	check := func(k core.PatternKind, wantN, wantTP int) {
		t.Helper()
		pc := perPattern[k]
		if pc.n != wantN || pc.tp != wantTP {
			t.Errorf("%s: N=%d TP=%d, want N=%d TP=%d", k, pc.n, pc.tp, wantN, wantTP)
		}
	}
	check(core.PatternKRP, 21, 21)
	check(core.PatternSBS, 79, 68)
	check(core.PatternMBS, 107, 60)
	if detected != 180 || trueDetected != 142 {
		t.Errorf("detected %d (want 180), true %d (want 142)", detected, trueDetected)
	}
	prec := float64(trueDetected) / float64(detected) * 100
	if prec < 78.5 || prec > 79.3 {
		t.Errorf("overall precision = %.1f%%, want 78.9%%", prec)
	}
}

// TestYieldAggregatorHeuristic reproduces §VI-C: the heuristic suppresses
// the aggregator-initiated MBS baits, lifting MBS precision from 56.1%
// toward the paper's ~80%.
func TestYieldAggregatorHeuristic(t *testing.T) {
	c := corpus(t)
	det := detector(c, true)

	var n, tp int
	for _, r := range c.Receipts {
		rep := det.Inspect(r)
		if !rep.IsAttack || !rep.HasPattern(core.PatternMBS) {
			continue
		}
		truth := c.Truth[r.TxHash]
		n++
		if truth.Kind == KindAttack {
			for _, p := range truth.TruePatterns {
				if p == core.PatternMBS {
					tp++
				}
			}
		}
	}
	if n == 0 {
		t.Fatal("no MBS detections with heuristic")
	}
	prec := float64(tp) / float64(n) * 100
	// All 27 aggregator baits suppressed: 60 TP / 80 N = 75%.
	if prec < 70 || prec > 85 {
		t.Errorf("MBS precision with heuristic = %.1f%% (N=%d TP=%d), want ~75-80%%", prec, n, tp)
	}
	// True attacks must not be suppressed.
	for _, r := range c.Receipts {
		truth := c.Truth[r.TxHash]
		if truth.Kind != KindAttack {
			continue
		}
		if rep := det.Inspect(r); !rep.IsAttack {
			t.Fatalf("heuristic suppressed a true attack: %s (%s)", r.TxHash.Short(), truth.App)
		}
	}
}

// TestCorpusComposition sanity-checks corpus-level ground truth counts.
func TestCorpusComposition(t *testing.T) {
	c := corpus(t)
	var attacksN, known, repeats, unknown, sbsBaits, mbsBaits, benign int
	for _, truth := range c.Truth {
		switch truth.Kind {
		case KindAttack:
			attacksN++
			if truth.Repeat {
				repeats++
			} else if truth.Known {
				known++
			} else {
				unknown++
			}
		case KindSBSBait:
			sbsBaits++
		case KindMBSBait:
			mbsBaits++
		case KindBenign:
			benign++
		}
	}
	if attacksN != 142 || known != 22 || repeats != 11 || unknown != 109 {
		t.Errorf("attacks=%d known=%d repeats=%d unknown=%d, want 142/22/11/109",
			attacksN, known, repeats, unknown)
	}
	if sbsBaits != sbsBaitCount || mbsBaits != mbsBaitCount {
		t.Errorf("baits = %d/%d, want %d/%d", sbsBaits, mbsBaits, sbsBaitCount, mbsBaitCount)
	}
	if benign < 1000 {
		t.Errorf("benign corpus suspiciously small: %d", benign)
	}
	// Every true attack profited (manual verification criterion 2).
	for _, truth := range c.Truth {
		if truth.Kind == KindAttack && truth.Profit.IsZero() {
			t.Errorf("attack on %s made no profit", truth.App)
		}
	}
}

// TestCorpusDeterminism: identical (seed, scale) produce byte-identical
// corpora — the property Date.now-free, rng-seeded generation guarantees.
func TestCorpusDeterminism(t *testing.T) {
	a, err := Generate(Config{Seed: 3, ScalePct: 1})
	if err != nil {
		t.Fatal(err)
	}
	b, err := Generate(Config{Seed: 3, ScalePct: 1})
	if err != nil {
		t.Fatal(err)
	}
	if len(a.Receipts) != len(b.Receipts) {
		t.Fatalf("sizes differ: %d vs %d", len(a.Receipts), len(b.Receipts))
	}
	for i := range a.Receipts {
		if a.Receipts[i].TxHash != b.Receipts[i].TxHash {
			t.Fatalf("receipt %d differs: %s vs %s", i, a.Receipts[i].TxHash.Short(), b.Receipts[i].TxHash.Short())
		}
		ta, tb := a.Truth[a.Receipts[i].TxHash], b.Truth[b.Receipts[i].TxHash]
		if ta.Kind != tb.Kind || !ta.Profit.Eq(tb.Profit) || ta.App != tb.App {
			t.Fatalf("truth %d differs: %+v vs %+v", i, ta, tb)
		}
	}
	// A different seed actually changes something.
	c, err := Generate(Config{Seed: 4, ScalePct: 1})
	if err != nil {
		t.Fatal(err)
	}
	same := len(a.Receipts) == len(c.Receipts)
	if same {
		diff := false
		for i := range a.Receipts {
			if a.Receipts[i].TxHash != c.Receipts[i].TxHash {
				diff = true
				break
			}
		}
		same = !diff
	}
	if same {
		t.Error("different seeds produced identical corpora")
	}
}
