// Package buildinfo carries the build identity the daemons surface in
// /healthz and /metrics. Version is a plain package variable so release
// builds stamp it with the linker:
//
//	go build -ldflags "-X leishen/internal/buildinfo.Version=v1.2.3" ./...
//
// An unstamped build reports "dev".
package buildinfo

import (
	"runtime"

	"leishen/internal/metrics"
)

// Version is the release identity, overridden via -ldflags -X.
var Version = "dev"

// GoVersion returns the runtime's Go version (e.g. "go1.24.0").
func GoVersion() string { return runtime.Version() }

// Register adds the conventional build-info gauge to r: a constant 1
// whose labels carry the identity, so dashboards can join any other
// series against the running version.
func Register(r *metrics.Registry) {
	r.Gauge("leishen_build_info",
		"Build identity; the value is always 1, the labels carry the version.",
		metrics.Label{Name: "version", Value: Version},
		metrics.Label{Name: "goversion", Value: GoVersion()},
	).Set(1)
}
