// Package metrics is the runtime telemetry layer: lock-free counters,
// gauges and fixed-bucket histograms over stdlib atomics, collected by
// a Registry that renders the Prometheus text exposition format 0.0.4
// with deterministic ordering.
//
// The design constraint is the detection hot path. PR 2 bought the scan
// engine a ~10 alloc/tx steady state and microsecond-scale per-tx
// latency; instrumentation must not give that back. Every write path
// here — Counter.Add, Gauge.Set, Histogram.Observe, Timer.Stop — is a
// handful of uncontended atomic operations with zero heap allocations
// (guarded by testing.AllocsPerRun in the package tests and by the
// BENCH_metrics.json overhead gate end to end). Exposition is the slow
// path: it snapshots the registry under a mutex, sorts, and renders;
// scrapes are rare and never block writers, which go through atomics
// only.
//
// Metric value types are zero-value-ready and usable without a
// Registry: a subsystem can embed a Counter as a plain struct field and
// count into it unconditionally, attaching it to an exposition name
// only when (and if) a registry is wired — how the archive keeps one
// source of truth between its Stats snapshot and /metrics.
package metrics

import (
	"math"
	"sync/atomic"
	"time"
)

// cacheLineBytes is the padding unit separating adjacent hot atomics.
// 64 bytes covers x86-64 and most arm64 cores; Apple M-series uses 128,
// where two metrics may still share a line — padding halves the worst
// case rather than chasing every microarchitecture.
const cacheLineBytes = 64

// Counter is a monotonically increasing uint64, safe for concurrent
// use. The zero value is ready; padding keeps two counters laid out
// side by side (the common "struct of counters" shape) from false
// sharing a cache line.
type Counter struct {
	v atomic.Uint64
	_ [cacheLineBytes - 8]byte
}

// Inc adds 1.
func (c *Counter) Inc() { c.v.Add(1) }

// Add adds n. Counters only go up; deltas are unsigned by type.
func (c *Counter) Add(n uint64) { c.v.Add(n) }

// Value returns the current count.
func (c *Counter) Value() uint64 { return c.v.Load() }

// Gauge is an int64 that can go up and down, safe for concurrent use.
// The zero value is ready.
type Gauge struct {
	v atomic.Int64
	_ [cacheLineBytes - 8]byte
}

// Set replaces the value.
func (g *Gauge) Set(n int64) { g.v.Store(n) }

// Add adds n (negative to subtract).
func (g *Gauge) Add(n int64) { g.v.Add(n) }

// Inc adds 1.
func (g *Gauge) Inc() { g.v.Add(1) }

// Dec subtracts 1.
func (g *Gauge) Dec() { g.v.Add(-1) }

// Value returns the current value.
func (g *Gauge) Value() int64 { return g.v.Load() }

// Histogram counts observations into fixed buckets: one atomic counter
// per bucket plus an atomic observation count and sum. Bucket bounds
// are inclusive upper bounds (Prometheus "le" semantics): an
// observation lands in the first bucket whose bound is >= the value,
// or in the implicit +Inf overflow bucket. Bounds are fixed at
// construction — no resizing, no locking, and exposition renders the
// cumulative counts the text format requires.
type Histogram struct {
	bounds []float64 // ascending, strictly increasing; immutable
	les    []string  // pre-rendered `le` label values, immutable
	counts []atomic.Uint64
	inf    atomic.Uint64
	count  atomic.Uint64
	sum    atomic.Uint64 // float64 bits, updated by CAS
}

// NewHistogram builds a histogram over the given ascending bucket upper
// bounds. It panics on empty, unsorted or duplicated bounds — bucket
// layouts are static configuration, and a bad one should fail at
// construction, not skew quietly at observation time.
func NewHistogram(bounds []float64) *Histogram {
	if len(bounds) == 0 {
		panic("metrics: histogram needs at least one bucket bound")
	}
	h := &Histogram{
		bounds: append([]float64(nil), bounds...),
		counts: make([]atomic.Uint64, len(bounds)),
		les:    make([]string, len(bounds)),
	}
	for i, b := range h.bounds {
		if math.IsNaN(b) || math.IsInf(b, 0) {
			panic("metrics: histogram bounds must be finite (the +Inf bucket is implicit)")
		}
		if i > 0 && b <= h.bounds[i-1] {
			panic("metrics: histogram bounds must be strictly ascending")
		}
		h.les[i] = formatLabelFloat(b)
	}
	return h
}

// Observe records one value. Allocation-free: a short linear scan over
// the bounds (first buckets are the hot ones for latency work), two
// atomic adds, and a CAS loop folding the value into the float sum.
func (h *Histogram) Observe(v float64) {
	i := 0
	for i < len(h.bounds) && v > h.bounds[i] {
		i++
	}
	if i < len(h.counts) {
		h.counts[i].Add(1)
	} else {
		h.inf.Add(1)
	}
	h.count.Add(1)
	for {
		old := h.sum.Load()
		if h.sum.CompareAndSwap(old, math.Float64bits(math.Float64frombits(old)+v)) {
			return
		}
	}
}

// ObserveDuration records a duration in seconds — the Prometheus base
// unit for time.
func (h *Histogram) ObserveDuration(d time.Duration) { h.Observe(d.Seconds()) }

// Count returns the number of observations.
func (h *Histogram) Count() uint64 { return h.count.Load() }

// Sum returns the sum of all observed values. Count and Sum are each
// individually accurate but not read atomically together; exposition
// accepts the same skew every lock-free histogram does.
func (h *Histogram) Sum() float64 { return math.Float64frombits(h.sum.Load()) }

// Start begins timing an operation against the histogram. The returned
// Timer is a value — no allocation — and records on Stop.
func (h *Histogram) Start() Timer { return Timer{h: h, start: time.Now()} }

// Timer measures one operation into a histogram. Use as a value:
//
//	t := hist.Start()
//	... the operation ...
//	t.Stop()
type Timer struct {
	h     *Histogram
	start time.Time
}

// Stop observes the elapsed time since Start into the histogram, in
// seconds, and returns it. Stop on a zero Timer is a no-op.
func (t Timer) Stop() time.Duration {
	if t.h == nil {
		return 0
	}
	d := time.Since(t.start)
	t.h.ObserveDuration(d)
	return d
}

// Default bucket layouts. Bounds are in base units (seconds, bytes) per
// Prometheus convention.
var (
	// DefLatencyBuckets spans 1µs to 10s on a 1-2-5 ladder — wide
	// enough to hold both the ~µs detection path and ~ms fsyncs with
	// usable resolution at each scale.
	DefLatencyBuckets = []float64{
		1e-6, 2e-6, 5e-6, 1e-5, 2e-5, 5e-5, 1e-4, 2e-4, 5e-4,
		1e-3, 2e-3, 5e-3, 1e-2, 2e-2, 5e-2, 0.1, 0.2, 0.5, 1, 2, 5, 10,
	}
	// DefSizeBuckets spans 64 B to 16 MiB, ×4 per bucket — response
	// bodies, write batches, report payloads.
	DefSizeBuckets = []float64{
		64, 256, 1024, 4096, 16384, 65536, 262144, 1 << 20, 4 << 20, 16 << 20,
	}
	// DefCountBuckets spans 1 to 1024, ×2 per bucket — batch sizes,
	// queue drains, records per operation.
	DefCountBuckets = []float64{1, 2, 4, 8, 16, 32, 64, 128, 256, 512, 1024}
)
