package metrics

import (
	"strings"
	"sync"
	"testing"
)

// TestConcurrentHammer drives every metric type from many goroutines
// while a scraper renders the exposition — the package's whole job is
// to make this safe without locks on the write path. Run under
// -race (make race covers this package).
func TestConcurrentHammer(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("hammer_total", "hammered counter")
	g := r.Gauge("hammer_gauge", "hammered gauge")
	h := r.Histogram("hammer_seconds", "hammered histogram", DefLatencyBuckets)
	r.GaugeFunc("hammer_func", "scrape-time gauge", func() float64 { return float64(c.Value()) })

	const (
		writers = 8
		perG    = 2000
	)
	var wg sync.WaitGroup
	for w := 0; w < writers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < perG; i++ {
				c.Inc()
				g.Add(1)
				g.Add(-1)
				h.Observe(float64(i%100) * 1e-6)
				if i%128 == 0 {
					// Late registration racing the scraper.
					_ = r.AppendText(nil)
				}
			}
		}(w)
	}
	// Concurrent scrapers.
	for s := 0; s < 2; s++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 200; i++ {
				_ = r.AppendText(nil)
			}
		}()
	}
	wg.Wait()

	if got := c.Value(); got != writers*perG {
		t.Errorf("counter = %d, want %d", got, writers*perG)
	}
	if got := g.Value(); got != 0 {
		t.Errorf("gauge = %d, want 0", got)
	}
	if got := h.Count(); got != writers*perG {
		t.Errorf("histogram count = %d, want %d", got, writers*perG)
	}
	var cum uint64
	for i := range h.counts {
		cum += h.counts[i].Load()
	}
	cum += h.inf.Load()
	if cum != h.Count() {
		t.Errorf("bucket total %d != count %d", cum, h.Count())
	}
}

// TestConcurrentRegistration registers distinct series from many
// goroutines while scraping; the registry lock must keep the exposition
// internally consistent.
func TestConcurrentRegistration(t *testing.T) {
	r := NewRegistry()
	var wg sync.WaitGroup
	names := []string{"ra_total", "rb_total", "rc_total", "rd_total"}
	for _, name := range names {
		wg.Add(1)
		go func(name string) {
			defer wg.Done()
			r.Counter(name, "concurrently registered").Inc()
			_ = r.AppendText(nil)
		}(name)
	}
	wg.Wait()
	out := string(r.AppendText(nil))
	for _, name := range names {
		if !strings.Contains(out, name+" 1\n") {
			t.Errorf("missing %s in exposition:\n%s", name, out)
		}
	}
}
