package metrics

import (
	"math"
	"net/http/httptest"
	"strings"
	"testing"
	"time"
)

// TestExpositionGolden pins the full text format — HELP/TYPE headers,
// family sorting, label sorting within a family, cumulative histogram
// buckets, escaping — to one byte-exact document.
func TestExpositionGolden(t *testing.T) {
	r := NewRegistry()
	// Registered deliberately out of name order: exposition must sort.
	g := r.Gauge("z_gauge", "a gauge")
	g.Set(-7)
	c2 := r.Counter("a_requests_total", "requests", Label{"route", "/tx"})
	c1 := r.Counter("a_requests_total", "requests", Label{"route", "/batch"})
	c1.Add(3)
	c2.Inc()
	h := r.Histogram("m_seconds", "latency", []float64{0.1, 0.5, 2})
	h.Observe(0.05) // le=0.1
	h.Observe(0.5)  // le=0.5 (boundary is inclusive)
	h.Observe(3)    // +Inf
	r.GaugeFunc("b_records", "stored records", func() float64 { return 42 })
	r.Gauge("esc_info", "help with \\ and\nnewline", Label{"v", `quote " slash \ nl` + "\n"}).Set(1)

	want := strings.Join([]string{
		`# HELP a_requests_total requests`,
		`# TYPE a_requests_total counter`,
		`a_requests_total{route="/batch"} 3`,
		`a_requests_total{route="/tx"} 1`,
		`# HELP b_records stored records`,
		`# TYPE b_records gauge`,
		`b_records 42`,
		`# HELP esc_info help with \\ and\nnewline`,
		`# TYPE esc_info gauge`,
		`esc_info{v="quote \" slash \\ nl\n"} 1`,
		`# HELP m_seconds latency`,
		`# TYPE m_seconds histogram`,
		`m_seconds_bucket{le="0.1"} 1`,
		`m_seconds_bucket{le="0.5"} 2`,
		`m_seconds_bucket{le="2"} 2`,
		`m_seconds_bucket{le="+Inf"} 3`,
		`m_seconds_sum 3.55`,
		`m_seconds_count 3`,
		`# HELP z_gauge a gauge`,
		`# TYPE z_gauge gauge`,
		`z_gauge -7`,
	}, "\n") + "\n"

	got := string(r.AppendText(nil))
	if got != want {
		t.Errorf("exposition mismatch:\n--- got ---\n%s--- want ---\n%s", got, want)
	}
	// Deterministic: a second scrape of unchanged state is byte-identical.
	if again := string(r.AppendText(nil)); again != got {
		t.Errorf("second scrape differs:\n%s\nvs\n%s", again, got)
	}
}

func TestHandler(t *testing.T) {
	r := NewRegistry()
	r.Counter("x_total", "x").Add(5)
	rec := httptest.NewRecorder()
	r.Handler().ServeHTTP(rec, httptest.NewRequest("GET", "/metrics", nil))
	if ct := rec.Header().Get("Content-Type"); ct != ContentType {
		t.Errorf("Content-Type = %q, want %q", ct, ContentType)
	}
	body := rec.Body.String()
	if !strings.Contains(body, "x_total 5\n") {
		t.Errorf("body missing sample:\n%s", body)
	}
	if cl := rec.Header().Get("Content-Length"); cl == "" {
		t.Error("missing Content-Length")
	}
}

// TestHistogramBucketBoundaries pins the le semantics: a value equal to
// a bound lands in that bound's bucket, just above goes to the next,
// and everything past the last bound goes to +Inf only.
func TestHistogramBucketBoundaries(t *testing.T) {
	h := NewHistogram([]float64{1, 10, 100})
	cases := []struct {
		v    float64
		want int // bucket index, len(bounds) == +Inf
	}{
		{math.Inf(-1), 0}, {-5, 0}, {0, 0}, {1, 0},
		{1.0000001, 1}, {10, 1},
		{10.5, 2}, {100, 2},
		{100.5, 3}, {1e9, 3}, {math.Inf(1), 3},
	}
	for i, tc := range cases {
		before := snapshotBuckets(h)
		h.Observe(tc.v)
		after := snapshotBuckets(h)
		for b := range after {
			wantDelta := uint64(0)
			if b == tc.want {
				wantDelta = 1
			}
			if after[b]-before[b] != wantDelta {
				t.Errorf("case %d: Observe(%v) changed bucket %d by %d, want bucket %d",
					i, tc.v, b, after[b]-before[b], tc.want)
			}
		}
	}
	if got := h.Count(); got != uint64(len(cases)) {
		t.Errorf("Count = %d, want %d", got, len(cases))
	}
}

func snapshotBuckets(h *Histogram) []uint64 {
	out := make([]uint64, len(h.counts)+1)
	for i := range h.counts {
		out[i] = h.counts[i].Load()
	}
	out[len(h.counts)] = h.inf.Load()
	return out
}

// TestHistogramNaNSum documents that the sum survives ordinary values;
// the count/sum pair stays consistent after many concurrent-free
// observations.
func TestHistogramSum(t *testing.T) {
	h := NewHistogram(DefLatencyBuckets)
	var want float64
	for i := 1; i <= 1000; i++ {
		v := float64(i) * 1e-6
		h.Observe(v)
		want += v
	}
	if got := h.Sum(); math.Abs(got-want) > 1e-9 {
		t.Errorf("Sum = %v, want %v", got, want)
	}
	if h.Count() != 1000 {
		t.Errorf("Count = %d, want 1000", h.Count())
	}
}

func TestTimer(t *testing.T) {
	h := NewHistogram(DefLatencyBuckets)
	tm := h.Start()
	time.Sleep(time.Millisecond)
	d := tm.Stop()
	if d < time.Millisecond {
		t.Errorf("Timer measured %v, want >= 1ms", d)
	}
	if h.Count() != 1 || h.Sum() < 0.001 {
		t.Errorf("Timer did not observe: count %d sum %v", h.Count(), h.Sum())
	}
	var zero Timer
	if zero.Stop() != 0 {
		t.Error("zero Timer Stop should be a no-op")
	}
}

// TestWritePathAllocations is the hot-path contract: counting, gauging,
// observing and timing allocate nothing.
func TestWritePathAllocations(t *testing.T) {
	var c Counter
	var g Gauge
	h := NewHistogram(DefLatencyBuckets)
	checks := []struct {
		name string
		fn   func()
	}{
		{"Counter.Add", func() { c.Add(3) }},
		{"Counter.Inc", func() { c.Inc() }},
		{"Gauge.Set", func() { g.Set(9) }},
		{"Gauge.Add", func() { g.Add(-2) }},
		{"Histogram.Observe", func() { h.Observe(1.5e-5) }},
		{"Histogram.ObserveDuration", func() { h.ObserveDuration(42 * time.Microsecond) }},
		{"Timer", func() { h.Start().Stop() }},
	}
	for _, chk := range checks {
		if n := testing.AllocsPerRun(100, chk.fn); n != 0 {
			t.Errorf("%s allocates %.1f times per call, want 0", chk.name, n)
		}
	}
}

func TestZeroValuesUsable(t *testing.T) {
	var c Counter
	var g Gauge
	c.Add(2)
	g.Set(-1)
	if c.Value() != 2 || g.Value() != -1 {
		t.Errorf("zero values broken: counter %d gauge %d", c.Value(), g.Value())
	}
	r := NewRegistry()
	r.RegisterCounter("pre_total", "pre-existing", &c)
	if got := string(r.AppendText(nil)); !strings.Contains(got, "pre_total 2\n") {
		t.Errorf("registered zero-value counter missing:\n%s", got)
	}
}

func TestRegistrationPanics(t *testing.T) {
	cases := []struct {
		name string
		fn   func(r *Registry)
	}{
		{"invalid metric name", func(r *Registry) { r.Counter("0bad", "h") }},
		{"empty metric name", func(r *Registry) { r.Counter("", "h") }},
		{"invalid label name", func(r *Registry) { r.Counter("ok_total", "h", Label{"0bad", "v"}) }},
		{"reserved label name", func(r *Registry) { r.Counter("ok_total", "h", Label{"__meta", "v"}) }},
		{"duplicate series", func(r *Registry) {
			r.Counter("dup_total", "h")
			r.Counter("dup_total", "h")
		}},
		{"duplicate labeled series", func(r *Registry) {
			r.Counter("dup_total", "h", Label{"a", "x"})
			r.Counter("dup_total", "h", Label{"a", "x"})
		}},
		{"duplicate label in one series", func(r *Registry) {
			r.Counter("dup_total", "h", Label{"a", "x"}, Label{"a", "y"})
		}},
		{"kind clash", func(r *Registry) {
			r.Counter("clash", "h")
			r.Gauge("clash", "h", Label{"a", "x"})
		}},
		{"help clash", func(r *Registry) {
			r.Counter("clash_total", "one")
			r.Counter("clash_total", "two", Label{"a", "x"})
		}},
		{"empty histogram bounds", func(r *Registry) { r.Histogram("h_seconds", "h", nil) }},
		{"unsorted histogram bounds", func(r *Registry) { r.Histogram("h_seconds", "h", []float64{2, 1}) }},
		{"infinite histogram bound", func(r *Registry) { r.Histogram("h_seconds", "h", []float64{1, math.Inf(1)}) }},
	}
	for _, tc := range cases {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("%s: expected panic", tc.name)
				}
			}()
			tc.fn(NewRegistry())
		}()
	}
}

// TestLabeledSeriesShareHeader checks that two series of one family
// emit HELP/TYPE exactly once.
func TestLabeledSeriesShareHeader(t *testing.T) {
	r := NewRegistry()
	r.Counter("fam_total", "family", Label{"route", "/a"})
	r.Counter("fam_total", "family", Label{"route", "/b"})
	got := string(r.AppendText(nil))
	if strings.Count(got, "# HELP fam_total") != 1 || strings.Count(got, "# TYPE fam_total") != 1 {
		t.Errorf("family header not deduplicated:\n%s", got)
	}
}

func TestDefaultRegistrySingleton(t *testing.T) {
	if Default() != Default() {
		t.Error("Default() is not a singleton")
	}
}
