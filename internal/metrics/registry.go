package metrics

import (
	"fmt"
	"net/http"
	"sort"
	"strconv"
	"strings"
	"sync"
)

// Label is one constant name="value" pair attached to a metric at
// registration. Labels here are static — per-route, per-stage — never
// derived from request data, so the exposition's cardinality is fixed
// at wiring time.
type Label struct {
	Name, Value string
}

// Registry holds registered metrics and renders them in the Prometheus
// text exposition format 0.0.4. Registration is setup-time and panics
// on misuse (invalid names, duplicate series, one name spanning two
// types); collection is read-only over atomics and safe against
// concurrent writers.
type Registry struct {
	mu      sync.Mutex
	entries []*entry
	series  map[string]bool      // name + rendered labels, duplicate guard
	kinds   map[string][2]string // name -> {kind, help}, consistency guard
}

// entry is one registered series: identity plus a collect function
// that appends its sample line(s).
type entry struct {
	name    string
	help    string
	kind    string
	labels  string // rendered inner label list, `k="v",k2="v2"` or ""
	collect func(dst []byte, name, labels string) []byte
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{series: make(map[string]bool), kinds: make(map[string][2]string)}
}

// defaultRegistry is the process-wide registry behind Default.
var (
	defaultOnce     sync.Once
	defaultRegistry *Registry
)

// Default returns the process-wide registry — what cmd/leishen wires
// its pipeline and /metrics endpoint through. Library embedders that
// want isolation build their own with NewRegistry.
func Default() *Registry {
	defaultOnce.Do(func() { defaultRegistry = NewRegistry() })
	return defaultRegistry
}

// Counter creates, registers and returns a new counter series.
func (r *Registry) Counter(name, help string, labels ...Label) *Counter {
	c := &Counter{}
	r.RegisterCounter(name, help, c, labels...)
	return c
}

// Gauge creates, registers and returns a new gauge series.
func (r *Registry) Gauge(name, help string, labels ...Label) *Gauge {
	g := &Gauge{}
	r.RegisterGauge(name, help, g, labels...)
	return g
}

// Histogram creates, registers and returns a new histogram series over
// the given bucket upper bounds.
func (r *Registry) Histogram(name, help string, bounds []float64, labels ...Label) *Histogram {
	h := NewHistogram(bounds)
	r.RegisterHistogram(name, help, h, labels...)
	return h
}

// RegisterCounter attaches an existing counter — typically a zero-value
// struct field that has been counting since before any registry
// existed — to an exposition name.
func (r *Registry) RegisterCounter(name, help string, c *Counter, labels ...Label) {
	r.register(name, help, "counter", labels, func(dst []byte, name, lbls string) []byte {
		dst = appendSeries(dst, name, lbls)
		dst = strconv.AppendUint(dst, c.Value(), 10)
		return append(dst, '\n')
	})
}

// RegisterGauge attaches an existing gauge to an exposition name.
func (r *Registry) RegisterGauge(name, help string, g *Gauge, labels ...Label) {
	r.register(name, help, "gauge", labels, func(dst []byte, name, lbls string) []byte {
		dst = appendSeries(dst, name, lbls)
		dst = strconv.AppendInt(dst, g.Value(), 10)
		return append(dst, '\n')
	})
}

// GaugeFunc registers a gauge whose value is computed at scrape time —
// for quantities another subsystem already tracks under its own lock
// (archive record counts, cache occupancy). fn must be safe to call
// from the scrape goroutine.
func (r *Registry) GaugeFunc(name, help string, fn func() float64, labels ...Label) {
	r.register(name, help, "gauge", labels, func(dst []byte, name, lbls string) []byte {
		dst = appendSeries(dst, name, lbls)
		dst = appendFloat(dst, fn())
		return append(dst, '\n')
	})
}

// RegisterHistogram attaches an existing histogram to an exposition
// name. Bucket counts render cumulatively with the canonical le labels,
// followed by the _sum and _count series.
func (r *Registry) RegisterHistogram(name, help string, h *Histogram, labels ...Label) {
	r.register(name, help, "histogram", labels, func(dst []byte, name, lbls string) []byte {
		var cum uint64
		for i := range h.counts {
			cum += h.counts[i].Load()
			dst = appendBucket(dst, name, lbls, h.les[i], cum)
		}
		cum += h.inf.Load()
		dst = appendBucket(dst, name, lbls, "+Inf", cum)
		dst = appendSeries(dst, name+"_sum", lbls)
		dst = appendFloat(dst, h.Sum())
		dst = append(dst, '\n')
		dst = appendSeries(dst, name+"_count", lbls)
		dst = strconv.AppendUint(dst, h.Count(), 10)
		return append(dst, '\n')
	})
}

// register validates and stores one series.
func (r *Registry) register(name, help, kind string, labels []Label, collect func([]byte, string, string) []byte) {
	if !validMetricName(name) {
		panic(fmt.Sprintf("metrics: invalid metric name %q", name))
	}
	rendered := renderLabels(labels)
	r.mu.Lock()
	defer r.mu.Unlock()
	if prev, ok := r.kinds[name]; ok {
		if prev[0] != kind || prev[1] != help {
			panic(fmt.Sprintf("metrics: %s already registered as a %s (%q); cannot re-register as a %s (%q)",
				name, prev[0], prev[1], kind, help))
		}
	} else {
		r.kinds[name] = [2]string{kind, help}
	}
	key := name + "{" + rendered + "}"
	if r.series[key] {
		panic(fmt.Sprintf("metrics: duplicate series %s{%s}", name, rendered))
	}
	r.series[key] = true
	r.entries = append(r.entries, &entry{name: name, help: help, kind: kind, labels: rendered, collect: collect})
}

// AppendText appends the full exposition to dst and returns it.
// Families are sorted by metric name and series within a family by
// label string, so two scrapes of the same state are byte-identical —
// the same determinism discipline the report pipeline holds itself to.
func (r *Registry) AppendText(dst []byte) []byte {
	r.mu.Lock()
	snapshot := make([]*entry, len(r.entries))
	copy(snapshot, r.entries)
	r.mu.Unlock()
	sort.SliceStable(snapshot, func(i, j int) bool {
		if snapshot[i].name != snapshot[j].name {
			return snapshot[i].name < snapshot[j].name
		}
		return snapshot[i].labels < snapshot[j].labels
	})
	prev := ""
	for _, e := range snapshot {
		if e.name != prev {
			dst = append(dst, "# HELP "...)
			dst = append(dst, e.name...)
			dst = append(dst, ' ')
			dst = append(dst, escapeHelp(e.help)...)
			dst = append(dst, "\n# TYPE "...)
			dst = append(dst, e.name...)
			dst = append(dst, ' ')
			dst = append(dst, e.kind...)
			dst = append(dst, '\n')
			prev = e.name
		}
		dst = e.collect(dst, e.name, e.labels)
	}
	return dst
}

// ContentType is the exposition media type for HTTP responses.
const ContentType = "text/plain; version=0.0.4; charset=utf-8"

// Handler returns an http.Handler serving the exposition — mount it at
// GET /metrics.
func (r *Registry) Handler() http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, req *http.Request) {
		body := r.AppendText(nil)
		w.Header().Set("Content-Type", ContentType)
		w.Header().Set("Content-Length", strconv.Itoa(len(body)))
		//lint:allow errflow headers are already sent; a failed scrape write has no recovery path
		_, _ = w.Write(body)
	})
}

// appendSeries appends `name` or `name{labels}` plus the separating
// space.
func appendSeries(dst []byte, name, labels string) []byte {
	dst = append(dst, name...)
	if labels != "" {
		dst = append(dst, '{')
		dst = append(dst, labels...)
		dst = append(dst, '}')
	}
	return append(dst, ' ')
}

// appendBucket appends one cumulative histogram bucket line.
func appendBucket(dst []byte, name, labels, le string, cum uint64) []byte {
	dst = append(dst, name...)
	dst = append(dst, "_bucket{"...)
	if labels != "" {
		dst = append(dst, labels...)
		dst = append(dst, ',')
	}
	dst = append(dst, `le="`...)
	dst = append(dst, le...)
	dst = append(dst, `"} `...)
	dst = strconv.AppendUint(dst, cum, 10)
	return append(dst, '\n')
}

// appendFloat renders a float sample value.
func appendFloat(dst []byte, v float64) []byte {
	return strconv.AppendFloat(dst, v, 'g', -1, 64)
}

// formatLabelFloat renders a bucket bound for its le label.
func formatLabelFloat(v float64) string {
	return strconv.FormatFloat(v, 'g', -1, 64)
}

// renderLabels validates and renders a label list to its canonical
// inner form, sorted by label name.
func renderLabels(labels []Label) string {
	if len(labels) == 0 {
		return ""
	}
	sorted := append([]Label(nil), labels...)
	sort.Slice(sorted, func(i, j int) bool { return sorted[i].Name < sorted[j].Name })
	var b strings.Builder
	for i, l := range sorted {
		if !validLabelName(l.Name) {
			panic(fmt.Sprintf("metrics: invalid label name %q", l.Name))
		}
		if i > 0 {
			if sorted[i-1].Name == l.Name {
				panic(fmt.Sprintf("metrics: duplicate label name %q", l.Name))
			}
			b.WriteByte(',')
		}
		b.WriteString(l.Name)
		b.WriteString(`="`)
		b.WriteString(escapeLabelValue(l.Value))
		b.WriteByte('"')
	}
	return b.String()
}

func validMetricName(s string) bool {
	if s == "" {
		return false
	}
	for i, c := range s {
		switch {
		case c >= 'a' && c <= 'z', c >= 'A' && c <= 'Z', c == '_', c == ':':
		case c >= '0' && c <= '9':
			if i == 0 {
				return false
			}
		default:
			return false
		}
	}
	return true
}

func validLabelName(s string) bool {
	if s == "" || strings.HasPrefix(s, "__") {
		return false
	}
	for i, c := range s {
		switch {
		case c >= 'a' && c <= 'z', c >= 'A' && c <= 'Z', c == '_':
		case c >= '0' && c <= '9':
			if i == 0 {
				return false
			}
		default:
			return false
		}
	}
	return true
}

// escapeLabelValue applies the text-format label escapes.
func escapeLabelValue(s string) string {
	if !strings.ContainsAny(s, "\\\"\n") {
		return s
	}
	r := strings.NewReplacer(`\`, `\\`, `"`, `\"`, "\n", `\n`)
	return r.Replace(s)
}

// escapeHelp applies the text-format help escapes.
func escapeHelp(s string) string {
	if !strings.ContainsAny(s, "\\\n") {
		return s
	}
	r := strings.NewReplacer(`\`, `\\`, "\n", `\n`)
	return r.Replace(s)
}
