package leishen_test

import (
	"testing"

	"leishen"
	"leishen/internal/attacks"
	"leishen/internal/types"
	"leishen/internal/uint256"
)

// TestFacadeDetectsKnownAttack exercises the public API end to end: a
// downstream user reproduces an attack and inspects it through the
// facade only.
func TestFacadeDetectsKnownAttack(t *testing.T) {
	sc, ok := attacks.ByName("bZx-1")
	if !ok {
		t.Fatal("scenario missing")
	}
	res, err := sc.Run()
	if err != nil {
		t.Fatal(err)
	}
	det := leishen.NewDetector(res.Env.Chain, res.Env.Registry, leishen.Options{
		Simplify: leishen.SimplifyOptions{WETH: res.Env.WETH},
	})
	rep := det.Inspect(res.Receipt)
	if !rep.IsAttack || !rep.HasPattern(leishen.PatternSBS) {
		t.Fatalf("facade detection failed:\n%s", rep.Detail())
	}
	vols := leishen.PairVolatilities(rep.Trades)
	if len(vols) == 0 {
		t.Error("no volatilities")
	}
	// Paper Table I: ETH-WBTC ~125%.
	if v := vols["ETH-WBTC"]; v < 100 || v > 170 {
		t.Errorf("ETH-WBTC volatility = %.1f%%, want ~125%%", v)
	}
}

func TestFacadeDefaults(t *testing.T) {
	th := leishen.DefaultThresholds()
	if th.KRPMinBuys != 5 || th.SBSMinVolatilityBps != 2800 || th.MBSMinRounds != 3 {
		t.Errorf("thresholds = %+v", th)
	}
	if leishen.PatternKRP.String() != "KRP" {
		t.Error("pattern re-export broken")
	}
	var a leishen.Address
	if a != (types.Address{}) {
		t.Error("address alias broken")
	}
	var amt uint256.Int
	_ = amt
}
