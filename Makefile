# The full gate a change must pass before merging. Each layer catches a
# different bug class:
#   build       — it compiles;
#   vet         — the stock Go correctness checks;
#   lint        — the LeiShen domain suite (cmd/leishenlint): overflow-error
#                 discipline, deterministic map iteration, lock hygiene,
#                 purity of the detection pipeline, and fsync discipline in
#                 the storage layer;
#   test        — the unit and scenario suites;
#   race        — the concurrent surfaces (HTTP server, scan pool, chain,
#                 token registry, archive, follower) under the race detector;
#   bench-smoke — the throughput harness still runs end to end (tiny
#                 corpus, no numbers recorded);
#   fuzz-smoke  — short fuzz passes over the archive's record decoder
#                 and sidecar-index decoder, the two surfaces crash
#                 recovery and indexed reopen trust.
.PHONY: check build vet lint test race bench bench-smoke fuzz-smoke

check: build vet lint test race bench-smoke fuzz-smoke

build:
	go build ./...

vet:
	go vet ./...

lint:
	go run ./cmd/leishenlint ./...

test:
	go test ./...

race:
	go test -race ./internal/serve/... ./internal/evm/... ./internal/token/... ./internal/scan/... ./internal/archive/... ./internal/follower/...

# bench records scan throughput + allocation figures to BENCH_scan.json
# and archive append/reopen figures to BENCH_archive.json (tracked;
# regenerate when the hot path or the storage layer changes).
bench:
	go run ./cmd/benchjson -out BENCH_scan.json -archive-out BENCH_archive.json

bench-smoke:
	go run ./cmd/benchjson -smoke -out - -archive-out -

# fuzz-smoke hammers the segment decoder and the sidecar-index decoder
# with mutated bytes for a few seconds: no input may panic, mis-frame,
# or decode to a record/index that re-encodes differently.
fuzz-smoke:
	go test -run '^$$' -fuzz FuzzSegmentDecode -fuzztime 8s ./internal/archive
	go test -run '^$$' -fuzz FuzzSidecarDecode -fuzztime 8s ./internal/archive
