# The full gate a change must pass before merging. Each layer catches a
# different bug class:
#   build  — it compiles;
#   vet    — the stock Go correctness checks;
#   lint   — the LeiShen domain suite (cmd/leishenlint): overflow-error
#            discipline, deterministic map iteration, lock hygiene, and
#            purity of the detection pipeline;
#   test   — the unit and scenario suites;
#   race   — the concurrent surfaces (HTTP server, chain, token
#            registry) under the race detector.
.PHONY: check build vet lint test race

check: build vet lint test race

build:
	go build ./...

vet:
	go vet ./...

lint:
	go run ./cmd/leishenlint ./...

test:
	go test ./...

race:
	go test -race ./internal/serve/... ./internal/evm/... ./internal/token/...
