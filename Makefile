# The full gate a change must pass before merging. Each layer catches a
# different bug class:
#   build       — it compiles;
#   vet         — the stock Go correctness checks;
#   lint        — the LeiShen domain suite (cmd/leishenlint): overflow-error
#                 discipline, deterministic map iteration, lock hygiene, and
#                 purity of the detection pipeline;
#   test        — the unit and scenario suites;
#   race        — the concurrent surfaces (HTTP server, scan pool, chain,
#                 token registry) under the race detector;
#   bench-smoke — the throughput harness still runs end to end (tiny
#                 corpus, no numbers recorded).
.PHONY: check build vet lint test race bench bench-smoke

check: build vet lint test race bench-smoke

build:
	go build ./...

vet:
	go vet ./...

lint:
	go run ./cmd/leishenlint ./...

test:
	go test ./...

race:
	go test -race ./internal/serve/... ./internal/evm/... ./internal/token/... ./internal/scan/...

# bench records scan throughput + allocation figures to BENCH_scan.json
# (tracked; regenerate when the hot path changes).
bench:
	go run ./cmd/benchjson -out BENCH_scan.json

bench-smoke:
	go run ./cmd/benchjson -smoke -out -
