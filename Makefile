# The full gate a change must pass before merging. Each layer catches a
# different bug class:
#   build       — it compiles;
#   vet         — the stock Go correctness checks;
#   lint        — the LeiShen domain suite (cmd/leishenlint): overflow-error
#                 discipline, deterministic map iteration, lock hygiene,
#                 purity of the detection pipeline, fsync discipline in the
#                 storage layer, and the flow-sensitive analyzers (lost
#                 errors, leaked goroutines, order taint); emits lint.json
#                 as a machine-readable artifact;
#   test        — the unit and scenario suites;
#   race        — the concurrent surfaces (HTTP server, scan pool, chain,
#                 token registry, archive, follower) and the parallel lint
#                 driver under the race detector;
#   bench-smoke — the throughput harness still runs end to end (tiny
#                 corpus, no numbers recorded);
#   bench-serve-smoke — the HTTP serve benchmark on a tiny archive; it
#                 hard-fails unless the zero-decode path serves bodies
#                 byte-identical to the decode path and allocates less
#                 per request, so it doubles as a correctness gate;
#   bench-metrics-smoke — the telemetry overhead proof; it hard-fails
#                 when an instrumented scan runs >3% slower than a bare
#                 one or allocates on the per-transaction path;
#   bench-scan-smoke — the detection hot-path budget; it re-measures the
#                 committed corpus and hard-fails when steady-state
#                 allocations exceed 2 per transaction or sequential
#                 throughput drops >10% below the committed
#                 BENCH_scan.json baseline;
#   fault-smoke — the crash-consistency torture matrix: every archive
#                 write schedule is crashed at every mutating operation,
#                 recovered under durable/volatile/torn disk variants,
#                 and checked against the recovery invariants; any
#                 violation hard-fails the gate (bounded: ~250 crash
#                 points, runs in seconds);
#   fuzz-smoke  — short fuzz passes over the archive's record decoder,
#                 the sidecar-index decoder, and the uint256 small-value
#                 fast paths (differential against math/big).
.PHONY: check build vet lint test race bench bench-smoke bench-serve-smoke bench-metrics-smoke bench-scan-smoke fault-smoke fuzz-smoke

check: build vet lint test race bench-smoke bench-serve-smoke bench-metrics-smoke bench-scan-smoke fault-smoke fuzz-smoke

build:
	go build ./...

vet:
	go vet ./...

lint:
	go run ./cmd/leishenlint -strict-waivers -json-out lint.json ./...

test:
	go test ./...

race:
	go test -race ./internal/serve/... ./internal/evm/... ./internal/token/... ./internal/scan/... ./internal/archive/... ./internal/follower/... ./internal/analysis/... ./internal/metrics/... ./internal/vfs/...

# bench records scan throughput + allocation figures to BENCH_scan.json,
# archive append/reopen figures to BENCH_archive.json, per-analyzer
# lint wall time to BENCH_lint.json, HTTP read-path throughput
# (decode vs zero-decode serving) to BENCH_serve.json, and the
# telemetry overhead proof to BENCH_metrics.json (tracked; regenerate
# when the hot path, the storage layer, the analysis suite, the serving
# layer, or the instrumentation changes).
bench:
	go run ./cmd/benchjson -out BENCH_scan.json -archive-out BENCH_archive.json -lint-out BENCH_lint.json -serve-out BENCH_serve.json -metrics-out BENCH_metrics.json -fault-out BENCH_fault.json

bench-smoke:
	go run ./cmd/benchjson -smoke -out - -archive-out - -lint-out - -serve-out "" -metrics-out "" -fault-out ""

bench-serve-smoke:
	go run ./cmd/benchjson -smoke -out "" -archive-out "" -lint-out "" -serve-out - -metrics-out "" -fault-out ""

bench-metrics-smoke:
	go run ./cmd/benchjson -smoke -out "" -archive-out "" -lint-out "" -serve-out "" -metrics-out - -fault-out ""

# bench-scan-smoke re-runs the scan pass on the same corpus shape as the
# committed BENCH_scan.json and enforces the hot-path contract: at most
# 2 steady-state allocations per transaction, sequential throughput
# within 10% of the committed figure.
bench-scan-smoke:
	go run ./cmd/benchjson -scan-gate -out - -archive-out "" -lint-out "" -serve-out "" -metrics-out "" -fault-out ""

# fault-smoke runs the crash-consistency torture matrix to stdout and
# hard-fails on any invariant violation — the fast, deterministic form
# of the fault gate (the full bench records it to BENCH_fault.json).
fault-smoke:
	go run ./cmd/benchjson -out "" -archive-out "" -lint-out "" -serve-out "" -metrics-out "" -fault-out -

# fuzz-smoke hammers the segment decoder and the sidecar-index decoder
# with mutated bytes (no input may panic, mis-frame, or decode to a
# record/index that re-encodes differently), and the uint256 small-value
# fast paths differentially against math/big (every arithmetic result,
# rendering, and comparison must agree on mixed-limb operands).
fuzz-smoke:
	go test -run '^$$' -fuzz FuzzSegmentDecode -fuzztime 8s ./internal/archive
	go test -run '^$$' -fuzz FuzzSidecarDecode -fuzztime 8s ./internal/archive
	go test -run '^$$' -fuzz FuzzUint256FastPath -fuzztime 8s ./internal/uint256
