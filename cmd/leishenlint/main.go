// Command leishenlint runs the LeiShen domain static-analysis suite
// (internal/analysis) over packages of this module and exits nonzero on
// findings. It is the lint gate of `make check`:
//
//	go run ./cmd/leishenlint ./...          # whole module
//	go run ./cmd/leishenlint ./internal/... # subtree
//	go run ./cmd/leishenlint -only detorder,purity ./internal/core
//	go run ./cmd/leishenlint -json ./...    # machine-readable findings
//	go run ./cmd/leishenlint -list          # describe the analyzers
//
// A .lintbaseline file at the module root (or -baseline FILE) accepts
// known findings; baselined entries that no longer fire are reported as
// stale and fail the run, so the baseline can only shrink.
// -write-baseline regenerates the file from the current findings.
//
// Packages are analyzed in parallel (-par N workers, default
// GOMAXPROCS); output is byte-identical to a serial run.
//
// Exit status: 0 clean, 1 findings (or stale baseline entries), 2
// load/usage errors.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"runtime"

	"leishen/internal/analysis"
)

// jsonDiagnostic is the machine-readable rendering of one finding.
type jsonDiagnostic struct {
	File     string `json:"file"`
	Line     int    `json:"line"`
	Col      int    `json:"col"`
	Analyzer string `json:"analyzer"`
	Message  string `json:"message"`
}

// jsonReport is the -json output document.
type jsonReport struct {
	Packages    int              `json:"packages"`
	Findings    []jsonDiagnostic `json:"findings"`
	Stale       []string         `json:"stale_baseline,omitempty"`
	Baselined   int              `json:"baselined,omitempty"`
	BaselineLen int              `json:"baseline_entries,omitempty"`
}

func main() {
	list := flag.Bool("list", false, "list the analyzers and exit")
	only := flag.String("only", "", "comma-separated analyzer names to run (default all)")
	jsonOut := flag.Bool("json", false, "emit findings as JSON on stdout")
	jsonFile := flag.String("json-out", "", "also write the JSON report to this file")
	baselinePath := flag.String("baseline", "", "baseline file of accepted findings (default: .lintbaseline at module root, if present)")
	writeBaseline := flag.Bool("write-baseline", false, "write current findings to the baseline file and exit 0")
	strictWaivers := flag.Bool("strict-waivers", false, "flag //lint:allow directives that carry no reason")
	par := flag.Int("par", runtime.GOMAXPROCS(0), "maximum packages analyzed concurrently")
	flag.Usage = func() {
		fmt.Fprintf(os.Stderr, "usage: leishenlint [-list] [-only names] [-json] [-json-out file] [-baseline file] [-write-baseline] [-strict-waivers] [-par n] [packages]\n")
		flag.PrintDefaults()
	}
	flag.Parse()

	if *list {
		for _, a := range analysis.Suite() {
			fmt.Printf("%-14s %s\n", a.Name, a.Doc)
		}
		return
	}

	analyzers, err := analysis.ByName(*only)
	if err != nil {
		fatal(err)
	}
	loader, err := analysis.NewLoader(".")
	if err != nil {
		fatal(err)
	}
	pkgs, err := loader.Match(flag.Args())
	if err != nil {
		fatal(err)
	}

	diags := analysis.RunWith(pkgs, analyzers, analysis.RunConfig{
		Parallel:      *par,
		CheckWaivers:  true,
		StrictWaivers: *strictWaivers,
	})
	diags = analysis.Relativize(loader.ModRoot, diags)

	blPath := *baselinePath
	if blPath == "" {
		def := filepath.Join(loader.ModRoot, ".lintbaseline")
		if _, statErr := os.Stat(def); statErr == nil {
			blPath = def
		}
	}

	if *writeBaseline {
		if blPath == "" {
			blPath = filepath.Join(loader.ModRoot, ".lintbaseline")
		}
		f, err := os.Create(blPath)
		if err != nil {
			fatal(err)
		}
		if err := analysis.WriteBaseline(f, diags); err != nil {
			f.Close()
			fatal(err)
		}
		if err := f.Close(); err != nil {
			fatal(err)
		}
		fmt.Fprintf(os.Stderr, "leishenlint: wrote %d finding(s) to %s\n", len(diags), blPath)
		return
	}

	var stale []string
	baselined := 0
	baselineLen := 0
	if blPath != "" {
		f, err := os.Open(blPath)
		if err != nil {
			fatal(err)
		}
		bl, err := analysis.ParseBaseline(f)
		f.Close()
		if err != nil {
			fatal(fmt.Errorf("%s: %w", blPath, err))
		}
		baselineLen = bl.Len()
		var fresh []analysis.Diagnostic
		fresh, stale = bl.Apply(diags)
		baselined = len(diags) - len(fresh)
		diags = fresh
	}

	report := jsonReport{
		Packages:    len(pkgs),
		Findings:    make([]jsonDiagnostic, 0, len(diags)),
		Stale:       stale,
		Baselined:   baselined,
		BaselineLen: baselineLen,
	}
	for _, d := range diags {
		report.Findings = append(report.Findings, jsonDiagnostic{
			File:     d.Pos.Filename,
			Line:     d.Pos.Line,
			Col:      d.Pos.Column,
			Analyzer: d.Analyzer,
			Message:  d.Message,
		})
	}

	if *jsonFile != "" {
		data, err := json.MarshalIndent(report, "", "  ")
		if err != nil {
			fatal(err)
		}
		if err := os.WriteFile(*jsonFile, append(data, '\n'), 0o644); err != nil {
			fatal(err)
		}
	}

	if *jsonOut {
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", "  ")
		if err := enc.Encode(report); err != nil {
			fatal(err)
		}
	} else {
		for _, d := range diags {
			fmt.Println(d)
		}
		for _, s := range stale {
			fmt.Printf("stale baseline entry (fixed? delete the line): %s\n", s)
		}
	}

	if len(diags) > 0 || len(stale) > 0 {
		fmt.Fprintf(os.Stderr, "leishenlint: %d finding(s), %d stale baseline entr(ies) in %d package(s)\n",
			len(diags), len(stale), len(pkgs))
		os.Exit(1)
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "leishenlint:", err)
	os.Exit(2)
}
