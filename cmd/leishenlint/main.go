// Command leishenlint runs the LeiShen domain static-analysis suite
// (internal/analysis) over packages of this module and exits nonzero on
// findings. It is the lint gate of `make check`:
//
//	go run ./cmd/leishenlint ./...          # whole module
//	go run ./cmd/leishenlint ./internal/... # subtree
//	go run ./cmd/leishenlint -only detorder,purity ./internal/core
//	go run ./cmd/leishenlint -list          # describe the analyzers
//
// Exit status: 0 clean, 1 findings, 2 load/usage errors.
package main

import (
	"flag"
	"fmt"
	"os"

	"leishen/internal/analysis"
)

func main() {
	list := flag.Bool("list", false, "list the analyzers and exit")
	only := flag.String("only", "", "comma-separated analyzer names to run (default all)")
	flag.Usage = func() {
		fmt.Fprintf(os.Stderr, "usage: leishenlint [-list] [-only names] [packages]\n")
		flag.PrintDefaults()
	}
	flag.Parse()

	if *list {
		for _, a := range analysis.Suite() {
			fmt.Printf("%-14s %s\n", a.Name, a.Doc)
		}
		return
	}

	analyzers, err := analysis.ByName(*only)
	if err != nil {
		fmt.Fprintln(os.Stderr, "leishenlint:", err)
		os.Exit(2)
	}
	loader, err := analysis.NewLoader(".")
	if err != nil {
		fmt.Fprintln(os.Stderr, "leishenlint:", err)
		os.Exit(2)
	}
	pkgs, err := loader.Match(flag.Args())
	if err != nil {
		fmt.Fprintln(os.Stderr, "leishenlint:", err)
		os.Exit(2)
	}

	diags := analysis.Run(pkgs, analyzers)
	for _, d := range diags {
		fmt.Println(d)
	}
	if len(diags) > 0 {
		fmt.Fprintf(os.Stderr, "leishenlint: %d finding(s) in %d package(s)\n", len(diags), len(pkgs))
		os.Exit(1)
	}
}
