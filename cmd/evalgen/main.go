// Command evalgen regenerates every table and figure of the paper's
// evaluation section (§VI) against the simulated substrate:
//
//	evalgen -all            # everything (default)
//	evalgen -table1         # Table I:  known attack volatility + patterns
//	evalgen -table4         # Table IV: LeiShen vs DeFiRanger vs Explorer
//	evalgen -table5         # Table V:  wild detection precision
//	evalgen -table6         # Table VI: top attacked applications
//	evalgen -table7         # Table VII: profit analysis
//	evalgen -fig1           # Fig. 1:   weekly flash loans per provider
//	evalgen -fig8           # Fig. 8:   monthly unknown attacks
//	evalgen -perf           # §VI-A:    detection latency
//	evalgen -scale 10       # corpus scale percent (default 10)
//	evalgen -seed 7         # corpus seed
//	evalgen -workers 8      # scan worker pool size (0 = GOMAXPROCS)
package main

import (
	"flag"
	"fmt"
	"os"
	"sort"

	"leishen/internal/eval"
	"leishen/internal/world"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "evalgen:", err)
		os.Exit(1)
	}
}

func run() error {
	var (
		all     = flag.Bool("all", false, "run every experiment")
		table1  = flag.Bool("table1", false, "Table I: known attack volatility")
		table4  = flag.Bool("table4", false, "Table IV: detector comparison")
		table5  = flag.Bool("table5", false, "Table V: wild precision")
		table6  = flag.Bool("table6", false, "Table VI: top attacked apps")
		table7  = flag.Bool("table7", false, "Table VII: profit analysis")
		fig1    = flag.Bool("fig1", false, "Fig. 1: weekly flash loans")
		fig8    = flag.Bool("fig8", false, "Fig. 8: monthly attacks")
		perf    = flag.Bool("perf", false, "detection latency")
		scale   = flag.Int("scale", 10, "benign corpus scale percent")
		seed    = flag.Int64("seed", 7, "corpus seed")
		workers = flag.Int("workers", 0, "scan worker pool size (0 = GOMAXPROCS)")
	)
	flag.Parse()
	if !(*table1 || *table4 || *table5 || *table6 || *table7 || *fig1 || *fig8 || *perf) {
		*all = true
	}

	if *all || *table1 {
		if err := printTable1(); err != nil {
			return err
		}
	}
	if *all || *table4 {
		if err := printTable4(); err != nil {
			return err
		}
	}
	if *all || *table5 || *table6 || *table7 || *fig1 || *fig8 || *perf {
		fmt.Printf("== generating wild corpus (seed %d, scale %d%%) ==\n", *seed, *scale)
		c, err := world.Generate(world.Config{Seed: *seed, ScalePct: *scale})
		if err != nil {
			return err
		}
		res := eval.EvalCorpusWorkers(c, *workers)
		fmt.Printf("corpus: %d flash loan transactions (paper: 272,984 at 100%%)\n", res.FlashLoanTxs)
		providers := make([]string, 0, len(res.PerProvider))
		for p := range res.PerProvider {
			providers = append(providers, p)
		}
		sort.Strings(providers)
		for _, p := range providers {
			fmt.Printf("  %-8s %d\n", p, res.PerProvider[p])
		}
		fmt.Println()
		if *all || *table5 {
			printTable5(res)
		}
		if *all || *table6 {
			printTable6(res)
		}
		if *all || *table7 {
			printTable7(res)
		}
		if *all || *fig1 {
			fmt.Println("== Fig. 1: weekly flash loan transactions per provider ==")
			for _, name := range res.Fig1.Names {
				fmt.Printf("%-8s %s\n", name, res.Fig1.Sparkline(name))
			}
			fmt.Println()
			fmt.Println(res.Fig1)
		}
		if *all || *fig8 {
			fmt.Println("== Fig. 8: monthly detected unknown flpAttacks (paper: 109 total; ~6.5/mo 2020, ~4.3/mo 2021) ==")
			fmt.Printf("shape    %s\n\n", res.Fig8.Sparkline())
			fmt.Println(res.Fig8)
		}
		if *all || *perf {
			fmt.Println("== §VI-A: per-transaction detection latency ==")
			fmt.Printf("paper: 10 ms mean, 16 ms p75 (2.1 GHz Xeon, 2021)\n")
			fmt.Printf("here:  mean %.1f µs, p50 %.1f µs, p75 %.1f µs, p99 %.1f µs over %d txs\n\n",
				res.Perf.MeanMicros, res.Perf.P50Micros, res.Perf.P75Micros, res.Perf.P99Micros, res.Perf.Count)
		}
	}
	return nil
}

func printTable1() error {
	fmt.Println("== Table I: real-world flpAttacks (patterns + price volatility) ==")
	rows, err := eval.RunTable1()
	if err != nil {
		return err
	}
	fmt.Printf("%-3s %-18s %-9s %14s %14s  %-14s %s\n",
		"ID", "attack", "patterns", "paper vol%", "measured%", "pair", "profit")
	for _, r := range rows {
		fmt.Printf("%-3d %-18s %-9s %14.4g %14.4g  %-14s %s\n",
			r.ID, r.Name, r.Patterns, r.PaperVolatilityPct, r.MeasuredPct, r.PrimaryPair, r.ProfitHuman)
	}
	fmt.Println()
	return nil
}

func printTable4() error {
	fmt.Println("== Table IV: detection of known flpAttacks ==")
	rows, err := eval.RunTable4()
	if err != nil {
		return err
	}
	mark := func(b bool) string {
		if b {
			return "Y"
		}
		return "."
	}
	fmt.Printf("%-3s %-18s %-12s %-12s %-12s\n", "ID", "attack", "DeFiRanger", "Explorer+LS", "LeiShen")
	var dfr, exp, ls int
	for _, r := range rows {
		fmt.Printf("%-3d %-18s %-12s %-12s %-12s\n", r.ID, r.Name,
			mark(r.DeFiRanger), mark(r.Explorer), mark(r.LeiShen))
		if r.DeFiRanger {
			dfr++
		}
		if r.Explorer {
			exp++
		}
		if r.LeiShen {
			ls++
		}
	}
	fmt.Printf("totals: DeFiRanger %d (paper 9), Explorer+LeiShen %d (paper 4), LeiShen %d (paper 15 of 17 conforming)\n\n", dfr, exp, ls)
	return nil
}

func printTable5(res eval.CorpusEval) {
	fmt.Println("== Table V: detection results on the wild corpus ==")
	fmt.Println("paper: KRP 21/21 (100%), SBS 68/79 (86.1%), MBS 60/107 (56.1%), overall 142/180 (78.9%)")
	fmt.Print(res.TableV)
	fmt.Printf("%s   (paper: heuristic lifts MBS precision to ~80%%)\n\n", res.TableVHeuristic)
}

func printTable6(res eval.CorpusEval) {
	fmt.Println("== Table VI: top attacked applications (unknown attacks) ==")
	fmt.Println("paper: Balancer 31/5/14/13, Uniswap 16/6/8/5, Yearn 11/1/1/1")
	limit := len(res.TableVI)
	if limit > 6 {
		limit = 6
	}
	for _, row := range res.TableVI[:limit] {
		fmt.Println(row)
	}
	fmt.Println()
}

func printTable7(res eval.CorpusEval) {
	s := res.TableVII
	fmt.Println("== Table VII: attack profit analysis (analyzed unknown attacks) ==")
	fmt.Println("paper: mean $3,509*, min $23, max $6,102,198, total >$21M  (*see EXPERIMENTS.md)")
	fmt.Printf("here:  mean $%.0f, min $%.0f, max $%.0f, total $%.0f\n", s.Mean, s.Min, s.Max, s.Total)
	fmt.Printf("       top10%% avg $%.0f, top20%% avg $%.0f\n", s.Top10Avg, s.Top20Avg)
	fmt.Printf("yield: mean %.3f%%, min %.4f%%, max %.1f%%\n\n", s.MeanYield, s.MinYield, s.MaxYield)
}
