// Command benchjson measures scan-engine and archive throughput and
// writes the results as machine-readable JSON (BENCH_scan.json and
// BENCH_archive.json), so performance can be tracked across commits
// without parsing `go test -bench` output:
//
//	benchjson                      # default corpus, GOMAXPROCS workers
//	benchjson -workers 8 -scale 2  # explicit pool size and corpus scale
//	benchjson -smoke               # tiny corpus, one round — CI gate that
//	                               # the harness itself still works
//	benchjson -out BENCH_scan.json # scan output path
//	benchjson -archive-out BENCH_archive.json # archive output path
//
// The scan pass times two sweeps over the same generated corpus — a
// sequential scan (workers=1) and a parallel scan — and reports both as
// transactions/second, plus the steady-state heap allocations per
// transaction of the scratch-reusing hot path. On a single-core host the
// parallel figure tracks the sequential one (there is no parallelism to
// exploit); the gain appears with GOMAXPROCS > 1.
//
// The archive pass appends 100k synthetic report records (5k under
// -smoke) into a fresh archive in a temporary directory at the
// follower's durability cadence — a synced checkpoint every
// checkpointEvery records — then reopens it, timing the append loop and
// the open-time index rebuild the crash-recovery path runs.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"runtime"
	"time"

	"leishen/internal/archive"
	"leishen/internal/core"
	"leishen/internal/scan"
	"leishen/internal/simplify"
	"leishen/internal/types"
	"leishen/internal/world"
)

// Result is the BENCH_scan.json schema.
type Result struct {
	// Corpus provenance.
	Seed     int64 `json:"seed"`
	ScalePct int   `json:"scale_pct"`
	Txs      int   `json:"txs"`
	// Throughput, transactions per second.
	SeqTxPerSec float64 `json:"seq_tx_per_sec"`
	ParTxPerSec float64 `json:"par_tx_per_sec"`
	Speedup     float64 `json:"speedup"`
	// Pool shape.
	Workers    int `json:"workers"`
	GOMAXPROCS int `json:"gomaxprocs"`
	// Steady-state heap allocations per transaction with a reused
	// core.Scratch (the engine's per-worker configuration).
	AllocsPerTx float64 `json:"allocs_per_tx"`
	// Rounds is how many timed passes the medians were taken over.
	Rounds int `json:"rounds"`
}

// ArchiveResult is the BENCH_archive.json schema.
type ArchiveResult struct {
	// Workload shape.
	Records         int `json:"records"`
	PayloadBytes    int `json:"payload_bytes"`
	CheckpointEvery int `json:"checkpoint_every"`
	SegmentBytes    int64 `json:"segment_bytes"`
	// Append throughput at the follower's durability cadence (a synced
	// checkpoint every CheckpointEvery records), records per second.
	AppendPerSec float64 `json:"append_per_sec"`
	// Reopen cost: wall time of archive.Open on the populated
	// directory, which replays every segment to rebuild the index —
	// the crash-recovery path.
	ReopenMillis    float64 `json:"reopen_ms"`
	ReopenRecPerSec float64 `json:"reopen_rec_per_sec"`
	// Resulting on-disk shape.
	Segments int   `json:"segments"`
	DirBytes int64 `json:"dir_bytes"`
	// Rounds is how many timed passes the best figures were taken over.
	Rounds int `json:"rounds"`
}

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "benchjson:", err)
		os.Exit(1)
	}
}

func run() error {
	var (
		seed    = flag.Int64("seed", 7, "corpus seed")
		scale   = flag.Int("scale", 2, "corpus scale percent")
		workers = flag.Int("workers", 0, "parallel pass pool size (0 = GOMAXPROCS)")
		out     = flag.String("out", "BENCH_scan.json", "scan output path (- for stdout)")
		arcOut  = flag.String("archive-out", "BENCH_archive.json", "archive output path (- for stdout, \"\" to skip)")
		smoke   = flag.Bool("smoke", false, "tiny corpus, single round (CI sanity gate)")
	)
	flag.Parse()

	rounds := 5
	if *smoke {
		*scale = 1
		rounds = 1
	}
	fmt.Fprintf(os.Stderr, "generating corpus (seed %d, scale %d%%)...\n", *seed, *scale)
	c, err := world.Generate(world.Config{Seed: *seed, ScalePct: *scale})
	if err != nil {
		return err
	}
	det := core.NewDetector(c.Env.Chain, c.Env.Registry, core.Options{
		Simplify: simplify.Options{WETH: c.Env.WETH},
	})

	res := Result{
		Seed:       *seed,
		ScalePct:   *scale,
		Txs:        len(c.Receipts),
		Workers:    scan.Options{Workers: *workers}.ResolvedWorkers(len(c.Receipts)),
		GOMAXPROCS: runtime.GOMAXPROCS(0),
		Rounds:     rounds,
	}

	// Warm every cache (tagger memo, scratch growth) before timing.
	scan.Scan(det, c.Receipts, scan.Options{Workers: 1})

	res.SeqTxPerSec = timeScan(det, c, scan.Options{Workers: 1}, rounds)
	res.ParTxPerSec = timeScan(det, c, scan.Options{Workers: *workers}, rounds)
	if res.SeqTxPerSec > 0 {
		res.Speedup = res.ParTxPerSec / res.SeqTxPerSec
	}
	res.AllocsPerTx = allocsPerTx(det, c)

	if err := emitJSON(res, *out); err != nil {
		return err
	}
	if *out != "-" {
		fmt.Fprintf(os.Stderr, "seq %.0f tx/s, par %.0f tx/s (%.2fx at %d workers, GOMAXPROCS %d), %.1f allocs/tx -> %s\n",
			res.SeqTxPerSec, res.ParTxPerSec, res.Speedup, res.Workers, res.GOMAXPROCS, res.AllocsPerTx, *out)
	}

	if *arcOut == "" {
		return nil
	}
	ares, err := benchArchive(*smoke, rounds)
	if err != nil {
		return err
	}
	if err := emitJSON(ares, *arcOut); err != nil {
		return err
	}
	if *arcOut != "-" {
		fmt.Fprintf(os.Stderr, "archive: %d records, append %.0f rec/s, reopen %.1f ms (%.0f rec/s), %d segments -> %s\n",
			ares.Records, ares.AppendPerSec, ares.ReopenMillis, ares.ReopenRecPerSec, ares.Segments, *arcOut)
	}
	return nil
}

// emitJSON writes v as indented JSON to path ("-" for stdout).
func emitJSON(v any, path string) error {
	raw, err := json.MarshalIndent(v, "", "  ")
	if err != nil {
		return err
	}
	raw = append(raw, '\n')
	if path == "-" {
		_, err = os.Stdout.Write(raw)
		return err
	}
	return os.WriteFile(path, raw, 0o644)
}

// benchArchive populates a throwaway archive with synthetic report
// records at the follower's cadence and times append and reopen.
func benchArchive(smoke bool, rounds int) (*ArchiveResult, error) {
	res := &ArchiveResult{
		Records:         100_000,
		CheckpointEvery: 512,
		SegmentBytes:    8 << 20,
		Rounds:          rounds,
	}
	if smoke {
		res.Records = 5_000
	}
	// A representative mid-size detection report payload: the archived
	// JSON for a benign screened transaction runs a few hundred bytes.
	payload := []byte(`{"txHash":"0x0000000000000000000000000000000000000000000000000000000000000000",` +
		`"block":0,"success":true,"isFlashLoanTx":true,"isAttack":false,` +
		`"loans":[{"provider":"Uniswap","token":"0x00","amount":"40000000000000"}],` +
		`"matches":[],"trades":12,"transfers":31,"elapsedMicros":184}`)
	res.PayloadBytes = len(payload)

	for round := 0; round < rounds; round++ {
		dir, err := os.MkdirTemp("", "leishen-bench-archive-")
		if err != nil {
			return nil, err
		}
		appendSec, reopenSec, segs, dirBytes, err := archiveRound(dir, res, payload)
		os.RemoveAll(dir)
		if err != nil {
			return nil, err
		}
		if tps := float64(res.Records) / appendSec; tps > res.AppendPerSec {
			res.AppendPerSec = tps
		}
		ms := reopenSec * 1e3
		if res.ReopenMillis == 0 || ms < res.ReopenMillis {
			res.ReopenMillis = ms
			res.ReopenRecPerSec = float64(res.Records) / reopenSec
		}
		res.Segments = segs
		res.DirBytes = dirBytes
	}
	return res, nil
}

// archiveRound runs one populate+reopen cycle in dir and returns the
// append and reopen wall times.
func archiveRound(dir string, res *ArchiveResult, payload []byte) (appendSec, reopenSec float64, segs int, dirBytes int64, err error) {
	arc, err := archive.Open(dir, archive.Options{SegmentBytes: res.SegmentBytes})
	if err != nil {
		return 0, 0, 0, 0, err
	}
	start := time.Now()
	rec := archive.Record{Kind: archive.KindReport, Flags: archive.FlagFlashLoan, Report: payload}
	for i := 0; i < res.Records; i++ {
		// Two records per block, like a busy screened chain.
		rec.Block = uint64(1 + i/2)
		rec.TxHash = types.HashFromData([]byte{byte(i), byte(i >> 8), byte(i >> 16), byte(i >> 24)})
		if err := arc.AppendReport(&rec); err != nil {
			arc.Close()
			return 0, 0, 0, 0, err
		}
		if (i+1)%res.CheckpointEvery == 0 {
			cp := archive.Checkpoint{Block: rec.Block, Digest: rec.TxHash}
			if err := arc.AppendCheckpoint(cp); err != nil {
				arc.Close()
				return 0, 0, 0, 0, err
			}
		}
	}
	if err := arc.Sync(); err != nil {
		arc.Close()
		return 0, 0, 0, 0, err
	}
	appendSec = time.Since(start).Seconds()
	segs = arc.Segments()
	if err := arc.Close(); err != nil {
		return 0, 0, 0, 0, err
	}

	entries, err := os.ReadDir(dir)
	if err != nil {
		return 0, 0, 0, 0, err
	}
	for _, e := range entries {
		if info, ierr := e.Info(); ierr == nil {
			dirBytes += info.Size()
		}
	}

	start = time.Now()
	reopened, err := archive.Open(dir, archive.Options{SegmentBytes: res.SegmentBytes})
	if err != nil {
		return 0, 0, 0, 0, err
	}
	reopenSec = time.Since(start).Seconds()
	if got := reopened.Count(); got != res.Records {
		reopened.Close()
		return 0, 0, 0, 0, fmt.Errorf("reopen recovered %d report records, want %d", got, res.Records)
	}
	return appendSec, reopenSec, segs, dirBytes, reopened.Close()
}

// timeScan runs `rounds` full scans and returns the best throughput —
// the round least disturbed by GC or scheduler noise.
func timeScan(det *core.Detector, c *world.Corpus, opts scan.Options, rounds int) float64 {
	best := 0.0
	for i := 0; i < rounds; i++ {
		start := time.Now()
		scan.Scan(det, c.Receipts, opts)
		if d := time.Since(start); d > 0 {
			if tps := float64(len(c.Receipts)) / d.Seconds(); tps > best {
				best = tps
			}
		}
	}
	return best
}

// allocsPerTx measures steady-state heap allocations per transaction of
// the scratch-reusing detection path, the configuration each pool worker
// runs in.
func allocsPerTx(det *core.Detector, c *world.Corpus) float64 {
	if len(c.Receipts) == 0 {
		return 0
	}
	s := core.NewScratch()
	// Warm the scratch to steady-state capacity.
	for _, r := range c.Receipts {
		det.InspectScratch(r, s)
	}
	var before, after runtime.MemStats
	runtime.GC()
	runtime.ReadMemStats(&before)
	for _, r := range c.Receipts {
		det.InspectScratch(r, s)
	}
	runtime.ReadMemStats(&after)
	return float64(after.Mallocs-before.Mallocs) / float64(len(c.Receipts))
}
