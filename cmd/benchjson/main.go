// Command benchjson measures scan-engine, archive, lint and HTTP-serve
// throughput and writes the results as machine-readable JSON
// (BENCH_scan.json, BENCH_archive.json, BENCH_lint.json,
// BENCH_serve.json), so performance can be tracked across commits
// without parsing `go test -bench` output:
//
//	benchjson                      # default corpus, GOMAXPROCS workers
//	benchjson -workers 8 -scale 2  # explicit pool size and corpus scale
//	benchjson -smoke               # tiny corpus, one round — CI gate that
//	                               # the harness itself still works
//	benchjson -out BENCH_scan.json # scan output path ("" skips the pass)
//	benchjson -archive-out BENCH_archive.json # archive output path
//	benchjson -serve-out BENCH_serve.json     # HTTP serve output path
//
// The scan pass times two sweeps over the same generated corpus — a
// sequential scan (workers=1) and a parallel scan — and reports both as
// transactions/second, plus the steady-state heap allocations per
// transaction of the scratch-reusing hot path. On a single-core host the
// parallel figure tracks the sequential one (there is no parallelism to
// exploit); the gain appears with GOMAXPROCS > 1.
//
// The scan pass also emits a per-worker-count scaling table, so the
// parallel figure can be read against the host's core count instead of
// trusting a single speedup number.
//
// The archive pass appends 100k synthetic report records (5k under
// -smoke) into a fresh archive in a temporary directory at two
// durability cadences — a synced checkpoint every checkpointEvery
// records (the per-block path) and the group-commit cadence of deferred
// checkpoints with one sync per batch — then reopens it both ways
// (sidecar-indexed and full replay) and times flag-filtered Select with
// and without segment fence/bloom pruning.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"runtime"
	"time"

	"leishen/internal/archive"
	"leishen/internal/core"
	"leishen/internal/scan"
	"leishen/internal/simplify"
	"leishen/internal/types"
	"leishen/internal/uint256"
	"leishen/internal/world"
)

// Result is the BENCH_scan.json schema.
type Result struct {
	// Corpus provenance.
	Seed     int64 `json:"seed"`
	ScalePct int   `json:"scale_pct"`
	Txs      int   `json:"txs"`
	// Throughput, transactions per second.
	SeqTxPerSec float64 `json:"seq_tx_per_sec"`
	ParTxPerSec float64 `json:"par_tx_per_sec"`
	Speedup     float64 `json:"speedup"`
	// Pool shape.
	Workers    int `json:"workers"`
	GOMAXPROCS int `json:"gomaxprocs"`
	// Steady-state heap allocations per transaction with a reused
	// core.Arena (the engine's per-worker configuration), and the budget
	// the -scan-gate enforces on it.
	AllocsPerTx  float64 `json:"allocs_per_tx"`
	AllocsBudget float64 `json:"allocs_budget"`
	// FastPathHitRate is the fraction of counted uint256 operations that
	// took a small-value fast path during a full corpus sweep —
	// hits/(hits+falls), measured with counting enabled on a dedicated
	// untimed pass.
	FastPathHitRate float64 `json:"fast_path_hit_rate"`
	// Rounds is how many timed passes the medians were taken over.
	Rounds int `json:"rounds"`
	// Scaling is throughput at each worker count — on a single-core host
	// (gomaxprocs 1) the curve is flat and the Speedup figure above says
	// nothing about multi-core gains.
	Scaling []ScalePoint `json:"scaling"`
}

// ScalePoint is one row of the worker-scaling table. GOMAXPROCS is
// recorded per row so a flat curve is self-explaining: workers beyond
// the scheduler's core budget cannot add throughput.
type ScalePoint struct {
	Workers    int     `json:"workers"`
	GOMAXPROCS int     `json:"gomaxprocs"`
	TxPerSec   float64 `json:"tx_per_sec"`
}

// ArchiveResult is the BENCH_archive.json schema.
type ArchiveResult struct {
	// Workload shape.
	Records         int   `json:"records"`
	PayloadBytes    int   `json:"payload_bytes"`
	CheckpointEvery int   `json:"checkpoint_every"`
	SegmentBytes    int64 `json:"segment_bytes"`
	// Append throughput at the follower's per-block durability cadence
	// (a synced checkpoint every CheckpointEvery records), records per
	// second.
	AppendPerSec float64 `json:"append_per_sec"`
	// BatchedAppendPerSec is the group-commit cadence the follower's
	// writer actually runs: checkpoints appended deferred, one Sync per
	// SyncEvery checkpoints.
	BatchedAppendPerSec float64 `json:"batched_append_per_sec"`
	SyncEvery           int     `json:"sync_every"`
	// Reopen cost, both paths: ReopenMillis is a full-replay open
	// (sidecars ignored — the worst-case recovery path and the
	// pre-sidecar baseline), ReopenIndexedMillis an open that loads
	// every sealed segment from its .idx sidecar.
	ReopenMillis        float64 `json:"reopen_ms"`
	ReopenRecPerSec     float64 `json:"reopen_rec_per_sec"`
	ReopenIndexedMillis float64 `json:"reopen_indexed_ms"`
	ReopenSpeedup       float64 `json:"reopen_speedup"`
	// Select throughput for a flag-filtered query (FlagAttack lives in a
	// narrow band of blocks) with segment fence/bloom pruning on and off.
	SelectPrunedPerSec   float64 `json:"select_pruned_per_sec"`
	SelectUnprunedPerSec float64 `json:"select_unpruned_per_sec"`
	SelectSpeedup        float64 `json:"select_speedup"`
	// Resulting on-disk shape.
	Segments int   `json:"segments"`
	DirBytes int64 `json:"dir_bytes"`
	// Rounds is how many timed passes the best figures were taken over.
	Rounds int `json:"rounds"`
}

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "benchjson:", err)
		os.Exit(1)
	}
}

func run() error {
	var (
		seed     = flag.Int64("seed", 7, "corpus seed")
		scale    = flag.Int("scale", 2, "corpus scale percent")
		workers  = flag.Int("workers", 0, "parallel pass pool size (0 = GOMAXPROCS)")
		out      = flag.String("out", "BENCH_scan.json", "scan output path (- for stdout, \"\" to skip)")
		arcOut   = flag.String("archive-out", "BENCH_archive.json", "archive output path (- for stdout, \"\" to skip)")
		lintOut  = flag.String("lint-out", "BENCH_lint.json", "lint timing output path (- for stdout, \"\" to skip)")
		serveOut = flag.String("serve-out", "BENCH_serve.json", "serve output path (- for stdout, \"\" to skip)")
		metOut   = flag.String("metrics-out", "BENCH_metrics.json", "metrics overhead output path (- for stdout, \"\" to skip); the pass fails if instrumentation costs >3% throughput or allocates per tx")
		faultOut = flag.String("fault-out", "BENCH_fault.json", "crash-consistency torture output path (- for stdout, \"\" to skip); the pass hard-fails on any invariant violation")
		smoke    = flag.Bool("smoke", false, "tiny corpus, single round (CI sanity gate)")
		scanGate = flag.Bool("scan-gate", false, "hard-fail when allocs/tx exceeds -alloc-budget or sequential throughput regresses >10% vs -baseline")
		budget   = flag.Float64("alloc-budget", 2.0, "steady-state allocation budget per transaction enforced by -scan-gate")
		baseline = flag.String("baseline", "BENCH_scan.json", "committed result the -scan-gate compares throughput against (skipped when corpus shape differs)")
	)
	flag.Parse()

	rounds := 5
	if *smoke {
		*scale = 1
		rounds = 1
	}

	// The scan pass is the only one that needs the generated corpus, so
	// -out "" skips corpus generation entirely — `-out "" -serve-out -`
	// measures just the serve path in seconds, not minutes.
	if *out != "" {
		fmt.Fprintf(os.Stderr, "generating corpus (seed %d, scale %d%%)...\n", *seed, *scale)
		c, err := world.Generate(world.Config{Seed: *seed, ScalePct: *scale})
		if err != nil {
			return err
		}
		det := core.NewDetector(c.Env.Chain, c.Env.Registry, core.Options{
			Simplify: simplify.Options{WETH: c.Env.WETH},
		})

		res := Result{
			Seed:       *seed,
			ScalePct:   *scale,
			Txs:        len(c.Receipts),
			Workers:    scan.Options{Workers: *workers}.ResolvedWorkers(len(c.Receipts)),
			GOMAXPROCS: runtime.GOMAXPROCS(0),
			Rounds:     rounds,
		}

		// Warm every cache (tagger memo, scratch growth) before timing.
		scan.Scan(det, c.Receipts, scan.Options{Workers: 1})

		res.SeqTxPerSec = timeScan(det, c, scan.Options{Workers: 1}, rounds)
		res.ParTxPerSec = timeScan(det, c, scan.Options{Workers: *workers}, rounds)
		if res.SeqTxPerSec > 0 {
			res.Speedup = res.ParTxPerSec / res.SeqTxPerSec
		}
		res.AllocsPerTx = allocsPerTx(det, c)
		res.AllocsBudget = *budget
		res.FastPathHitRate = fastPathHitRate(det, c)
		res.Scaling = scalingTable(det, c, res.Workers, rounds)

		// The result is written before any gate verdict, so the numbers
		// behind a red CI run are on disk to read.
		if err := emitJSON(res, *out); err != nil {
			return err
		}
		if *out != "-" {
			fmt.Fprintf(os.Stderr, "seq %.0f tx/s, par %.0f tx/s (%.2fx at %d workers, GOMAXPROCS %d), %.3f allocs/tx, %.1f%% fast-path hits -> %s\n",
				res.SeqTxPerSec, res.ParTxPerSec, res.Speedup, res.Workers, res.GOMAXPROCS, res.AllocsPerTx, 100*res.FastPathHitRate, *out)
		}
		if *scanGate {
			if err := gateScan(res, *budget, *baseline); err != nil {
				return err
			}
		}
	}

	if *arcOut != "" {
		ares, err := benchArchive(*smoke, rounds)
		if err != nil {
			return err
		}
		if err := emitJSON(ares, *arcOut); err != nil {
			return err
		}
		if *arcOut != "-" {
			fmt.Fprintf(os.Stderr, "archive: %d records, append %.0f rec/s (batched %.0f), reopen replay %.1f ms / indexed %.2f ms (%.1fx), select pruned %.0f q/s vs %.0f, %d segments -> %s\n",
				ares.Records, ares.AppendPerSec, ares.BatchedAppendPerSec, ares.ReopenMillis, ares.ReopenIndexedMillis,
				ares.ReopenSpeedup, ares.SelectPrunedPerSec, ares.SelectUnprunedPerSec, ares.Segments, *arcOut)
		}
	}

	if *lintOut != "" {
		// Smoke keeps the gate honest without paying for a whole-module
		// type check: one small leaf package.
		patterns := []string{"./..."}
		if *smoke {
			patterns = []string{"./internal/uint256"}
		}
		lres, err := benchLint(patterns, rounds)
		if err != nil {
			return err
		}
		if err := emitJSON(lres, *lintOut); err != nil {
			return err
		}
		if *lintOut != "-" {
			fmt.Fprintf(os.Stderr, "lint: %d package(s) loaded in %.0f ms, %d analyzers in %.1f ms, %d finding(s) -> %s\n",
				lres.Packages, lres.LoadMillis, len(lres.Analyzers), lres.TotalMillis, lres.Findings, *lintOut)
		}
	}

	if *metOut != "" {
		mres, err := benchMetrics(*seed, *scale, rounds)
		// The gate result is written even when the gate fails, so the
		// numbers behind a red CI run are on disk to read.
		if mres != nil {
			if werr := emitJSON(mres, *metOut); werr != nil && err == nil {
				err = werr
			}
		}
		if err != nil {
			return err
		}
		if *metOut != "-" {
			fmt.Fprintf(os.Stderr, "metrics: bare %.0f tx/s vs instrumented %.0f (%.2f%% overhead, budget %.1f%%), %+.3f extra allocs/tx, %d families in %d exposition bytes -> %s\n",
				mres.BareTxPerSec, mres.InstrTxPerSec, mres.OverheadPct, mres.MaxOverheadPct,
				mres.ExtraAllocsPerTx, mres.ExpositionFamilies, mres.ExpositionBytes, *metOut)
		}
	}

	if *faultOut != "" {
		if err := runFaultPass(*faultOut); err != nil {
			return err
		}
	}

	if *serveOut != "" {
		sres, err := benchServe(*smoke, rounds)
		if err != nil {
			return err
		}
		if err := emitJSON(sres, *serveOut); err != nil {
			return err
		}
		if *serveOut != "-" {
			fmt.Fprintf(os.Stderr, "serve: %d records, /reports raw %.0f q/s vs decode %.0f (%.2fx), /reports/{tx} raw %.0f q/s vs decode %.0f (%.2fx), raw %.0f vs decode %.0f allocs/list-req -> %s\n",
				sres.Records, sres.Raw.List.QPS, sres.Decode.List.QPS, sres.ListQPSSpeedup,
				sres.Raw.Get.QPS, sres.Decode.Get.QPS, sres.GetQPSSpeedup,
				sres.Raw.List.AllocsPerReq, sres.Decode.List.AllocsPerReq, *serveOut)
		}
	}
	return nil
}

// emitJSON writes v as indented JSON to path ("-" for stdout).
func emitJSON(v any, path string) error {
	raw, err := json.MarshalIndent(v, "", "  ")
	if err != nil {
		return err
	}
	raw = append(raw, '\n')
	if path == "-" {
		_, err = os.Stdout.Write(raw)
		return err
	}
	return os.WriteFile(path, raw, 0o644)
}

// benchArchive populates a throwaway archive with synthetic report
// records at the follower's cadence and times append (both durability
// cadences), reopen (replay and sidecar-indexed) and pruned vs.
// unpruned Select.
func benchArchive(smoke bool, rounds int) (*ArchiveResult, error) {
	res := &ArchiveResult{
		Records:         100_000,
		CheckpointEvery: 512,
		SyncEvery:       8,
		SegmentBytes:    8 << 20,
		Rounds:          rounds,
	}
	if smoke {
		res.Records = 5_000
	}
	// A representative mid-size detection report payload: the archived
	// JSON for a benign screened transaction runs a few hundred bytes.
	payload := []byte(`{"txHash":"0x0000000000000000000000000000000000000000000000000000000000000000",` +
		`"block":0,"success":true,"isFlashLoanTx":true,"isAttack":false,` +
		`"loans":[{"provider":"Uniswap","token":"0x00","amount":"40000000000000"}],` +
		`"matches":[],"trades":12,"transfers":31,"elapsedMicros":184}`)
	res.PayloadBytes = len(payload)

	for round := 0; round < rounds; round++ {
		dir, err := os.MkdirTemp("", "leishen-bench-archive-")
		if err != nil {
			return nil, err
		}
		fig, err := archiveRound(dir, res, payload)
		os.RemoveAll(dir)
		if err != nil {
			return nil, err
		}
		// Keep the best (least noise-disturbed) figure of each round.
		best := func(cur *float64, v float64) {
			if v > *cur {
				*cur = v
			}
		}
		best(&res.AppendPerSec, float64(res.Records)/fig.appendSec)
		best(&res.BatchedAppendPerSec, float64(res.Records)/fig.batchedSec)
		best(&res.SelectPrunedPerSec, fig.prunedQPS)
		best(&res.SelectUnprunedPerSec, fig.unprunedQPS)
		if ms := fig.replaySec * 1e3; res.ReopenMillis == 0 || ms < res.ReopenMillis {
			res.ReopenMillis = ms
			res.ReopenRecPerSec = float64(res.Records) / fig.replaySec
		}
		if ms := fig.indexedSec * 1e3; res.ReopenIndexedMillis == 0 || ms < res.ReopenIndexedMillis {
			res.ReopenIndexedMillis = ms
		}
		res.Segments = fig.segs
		res.DirBytes = fig.dirBytes
	}
	if res.ReopenIndexedMillis > 0 {
		res.ReopenSpeedup = res.ReopenMillis / res.ReopenIndexedMillis
	}
	if res.SelectUnprunedPerSec > 0 {
		res.SelectSpeedup = res.SelectPrunedPerSec / res.SelectUnprunedPerSec
	}
	return res, nil
}

// roundFigures is one archive round's raw timings.
type roundFigures struct {
	appendSec   float64 // per-block synced cadence
	batchedSec  float64 // group-commit cadence
	replaySec   float64 // full-replay reopen
	indexedSec  float64 // sidecar-indexed reopen
	prunedQPS   float64
	unprunedQPS float64
	segs        int
	dirBytes    int64
}

// populate appends res.Records synthetic reports into a fresh archive
// under dir. Records in a narrow band of blocks additionally carry
// FlagAttack, giving the Select benchmark something pruning can skip.
// batched selects the durability cadence: per-block synced checkpoints,
// or deferred checkpoints with one Sync per res.SyncEvery.
func populate(dir string, res *ArchiveResult, payload []byte, batched bool) (sec float64, segs int, err error) {
	arc, err := archive.Open(dir, archive.Options{SegmentBytes: res.SegmentBytes})
	if err != nil {
		return 0, 0, err
	}
	attackLo := res.Records / 2
	attackHi := attackLo + res.Records/100
	start := time.Now()
	rec := archive.Record{Kind: archive.KindReport, Report: payload}
	cps := 0
	for i := 0; i < res.Records; i++ {
		// Two records per block, like a busy screened chain.
		rec.Block = uint64(1 + i/2)
		rec.TxHash = types.HashFromData([]byte{byte(i), byte(i >> 8), byte(i >> 16), byte(i >> 24)})
		rec.Flags = archive.FlagFlashLoan
		if i >= attackLo && i < attackHi {
			rec.Flags |= archive.FlagAttack
		}
		if err := arc.AppendReport(&rec); err != nil {
			arc.Close()
			return 0, 0, err
		}
		if (i+1)%res.CheckpointEvery == 0 {
			cp := archive.Checkpoint{Block: rec.Block, Digest: rec.TxHash}
			if batched {
				err = arc.AppendCheckpointDeferred(cp)
				if cps++; err == nil && cps%res.SyncEvery == 0 {
					err = arc.Sync()
				}
			} else {
				err = arc.AppendCheckpoint(cp)
			}
			if err != nil {
				arc.Close()
				return 0, 0, err
			}
		}
	}
	if err := arc.Sync(); err != nil {
		arc.Close()
		return 0, 0, err
	}
	sec = time.Since(start).Seconds()
	segs = arc.Segments()
	return sec, segs, arc.Close()
}

// archiveRound runs one full measurement cycle in dir.
func archiveRound(dir string, res *ArchiveResult, payload []byte) (fig roundFigures, err error) {
	syncedDir := filepath.Join(dir, "synced")
	batchedDir := filepath.Join(dir, "batched")
	if fig.appendSec, fig.segs, err = populate(syncedDir, res, payload, false); err != nil {
		return fig, err
	}
	if fig.batchedSec, _, err = populate(batchedDir, res, payload, true); err != nil {
		return fig, err
	}

	entries, err := os.ReadDir(syncedDir)
	if err != nil {
		return fig, err
	}
	for _, e := range entries {
		if info, ierr := e.Info(); ierr == nil {
			fig.dirBytes += info.Size()
		}
	}

	// Reopen, worst case first: a full replay of every record (the
	// pre-sidecar behaviour, and still the fallback when sidecars are
	// missing or stale). Each path is timed as the best of a few opens —
	// a single open is at the mercy of GC pauses from the corpus heap.
	var replayed *archive.Archive
	fig.replaySec, replayed, err = timeOpen(syncedDir, archive.Options{SegmentBytes: res.SegmentBytes, NoSidecars: true}, res.Records)
	if err != nil {
		return fig, err
	}
	if err := replayed.Close(); err != nil {
		return fig, err
	}

	// The indexed path: every segment (active tail included, sealed by
	// the clean Close) loads from its sidecar.
	var indexed *archive.Archive
	fig.indexedSec, indexed, err = timeOpen(syncedDir, archive.Options{SegmentBytes: res.SegmentBytes}, res.Records)
	if err != nil {
		return fig, err
	}

	// Select: first matches of the rare flag, the "what did we flag"
	// query a monitor asks constantly.
	query := archive.Query{Flags: archive.FlagAttack, Limit: 10}
	fig.prunedQPS, err = timeSelect(indexed, query)
	if err != nil {
		indexed.Close()
		return fig, err
	}
	if err := indexed.Close(); err != nil {
		return fig, err
	}

	unpruned, err := archive.Open(syncedDir, archive.Options{SegmentBytes: res.SegmentBytes, NoPrune: true})
	if err != nil {
		return fig, err
	}
	fig.unprunedQPS, err = timeSelect(unpruned, query)
	if err != nil {
		unpruned.Close()
		return fig, err
	}
	return fig, unpruned.Close()
}

// timeOpen opens dir a few times, returning the fastest open's wall
// time and the final archive, left open for the caller.
func timeOpen(dir string, opts archive.Options, want int) (float64, *archive.Archive, error) {
	const iters = 3
	var best float64
	var arc *archive.Archive
	for i := 0; i < iters; i++ {
		if arc != nil {
			if err := arc.Close(); err != nil {
				return 0, nil, err
			}
		}
		start := time.Now()
		a, err := archive.Open(dir, opts)
		if err != nil {
			return 0, nil, err
		}
		sec := time.Since(start).Seconds()
		if got := a.Count(); got != want {
			a.Close()
			return 0, nil, fmt.Errorf("reopen recovered %d report records, want %d", got, want)
		}
		if best == 0 || sec < best {
			best = sec
		}
		arc = a
	}
	return best, arc, nil
}

// timeSelect measures q against arc, queries per second.
func timeSelect(arc *archive.Archive, q archive.Query) (float64, error) {
	const iters = 200
	start := time.Now()
	for i := 0; i < iters; i++ {
		recs, _, err := arc.Select(q)
		if err != nil {
			return 0, err
		}
		if len(recs) == 0 {
			return 0, fmt.Errorf("select benchmark query matched nothing")
		}
	}
	return iters / time.Since(start).Seconds(), nil
}

// scalingTable times a full scan at each worker count. The sweep always
// covers {1, 2, 4, 8} — even on a single-core host, where the curve is
// flat — and keeps doubling up to the larger of GOMAXPROCS and the
// resolved pool size when that goes higher. Each row records the
// GOMAXPROCS it ran under, so a flat curve carries its own explanation
// in the data instead of a prose caveat.
func scalingTable(det *core.Detector, c *world.Corpus, resolved, rounds int) []ScalePoint {
	maxW := runtime.GOMAXPROCS(0)
	if resolved > maxW {
		maxW = resolved
	}
	counts := []int{1, 2, 4, 8}
	for w := 16; w <= maxW; w *= 2 {
		counts = append(counts, w)
	}
	if maxW > counts[len(counts)-1] {
		counts = append(counts, maxW)
	}
	if rounds > 3 {
		rounds = 3
	}
	table := make([]ScalePoint, 0, len(counts))
	for _, w := range counts {
		table = append(table, ScalePoint{
			Workers:    w,
			GOMAXPROCS: runtime.GOMAXPROCS(0),
			TxPerSec:   timeScan(det, c, scan.Options{Workers: w}, rounds),
		})
	}
	return table
}

// timeScan runs `rounds` full scans and returns the best throughput —
// the round least disturbed by GC or scheduler noise.
func timeScan(det *core.Detector, c *world.Corpus, opts scan.Options, rounds int) float64 {
	best := 0.0
	for i := 0; i < rounds; i++ {
		// Drain GC debt before the clock starts: the hot path allocates
		// almost nothing, so collections triggered by corpus-generation
		// garbage would otherwise land on a few unlucky passes whole
		// instead of amortizing across all of them.
		runtime.GC()
		start := time.Now()
		scan.Scan(det, c.Receipts, opts)
		if d := time.Since(start); d > 0 {
			if tps := float64(len(c.Receipts)) / d.Seconds(); tps > best {
				best = tps
			}
		}
	}
	return best
}

// allocsPerTx measures steady-state heap allocations per transaction of
// the arena-reusing detection path, the configuration each pool worker
// runs in.
func allocsPerTx(det *core.Detector, c *world.Corpus) float64 {
	if len(c.Receipts) == 0 {
		return 0
	}
	s := core.NewArena()
	// Warm the arena to steady-state capacity.
	for _, r := range c.Receipts {
		det.InspectScratch(r, s)
	}
	var before, after runtime.MemStats
	runtime.GC()
	runtime.ReadMemStats(&before)
	for _, r := range c.Receipts {
		det.InspectScratch(r, s)
	}
	runtime.ReadMemStats(&after)
	return float64(after.Mallocs-before.Mallocs) / float64(len(c.Receipts))
}

// fastPathHitRate sweeps the corpus once with uint256 fast-path
// counting enabled and returns hits/(hits+falls). The pass is untimed
// and single-goroutine so the atomic counters never disturb the
// throughput figures.
func fastPathHitRate(det *core.Detector, c *world.Corpus) float64 {
	if len(c.Receipts) == 0 {
		return 0
	}
	s := core.NewArena()
	uint256.ResetFastPathCounts()
	uint256.SetFastPathCounting(true)
	for _, r := range c.Receipts {
		det.InspectScratch(r, s)
	}
	uint256.SetFastPathCounting(false)
	hits, falls := uint256.FastPathCounts()
	if hits+falls == 0 {
		return 0
	}
	return float64(hits) / float64(hits+falls)
}

// gateScan enforces the scan-performance contract: steady-state
// allocations within budget, and sequential throughput within 10% of
// the committed baseline (compared only when the baseline ran the same
// corpus — seed, scale and transaction count — so a corpus change never
// masquerades as a regression).
func gateScan(res Result, budget float64, baselinePath string) error {
	if res.AllocsPerTx > budget {
		return fmt.Errorf("scan gate: %.3f allocs/tx exceeds budget %.1f", res.AllocsPerTx, budget)
	}
	if baselinePath == "" {
		return nil
	}
	raw, err := os.ReadFile(baselinePath)
	if err != nil {
		if os.IsNotExist(err) {
			fmt.Fprintf(os.Stderr, "scan gate: no baseline at %s, throughput check skipped\n", baselinePath)
			return nil
		}
		return fmt.Errorf("scan gate: read baseline: %w", err)
	}
	var base Result
	if err := json.Unmarshal(raw, &base); err != nil {
		return fmt.Errorf("scan gate: parse baseline %s: %w", baselinePath, err)
	}
	if base.Seed != res.Seed || base.ScalePct != res.ScalePct || base.Txs != res.Txs {
		fmt.Fprintf(os.Stderr, "scan gate: baseline %s ran a different corpus (seed %d scale %d txs %d), throughput check skipped\n",
			baselinePath, base.Seed, base.ScalePct, base.Txs)
		return nil
	}
	if floor := 0.9 * base.SeqTxPerSec; res.SeqTxPerSec < floor {
		return fmt.Errorf("scan gate: seq throughput %.0f tx/s is below 90%% of baseline %.0f tx/s",
			res.SeqTxPerSec, base.SeqTxPerSec)
	}
	fmt.Fprintf(os.Stderr, "scan gate: ok (%.3f allocs/tx <= %.1f, seq %.0f tx/s vs baseline %.0f)\n",
		res.AllocsPerTx, budget, res.SeqTxPerSec, base.SeqTxPerSec)
	return nil
}
