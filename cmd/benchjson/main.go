// Command benchjson measures scan-engine throughput and writes the
// result as machine-readable JSON (BENCH_scan.json), so performance can
// be tracked across commits without parsing `go test -bench` output:
//
//	benchjson                      # default corpus, GOMAXPROCS workers
//	benchjson -workers 8 -scale 2  # explicit pool size and corpus scale
//	benchjson -smoke               # tiny corpus, one round — CI gate that
//	                               # the harness itself still works
//	benchjson -out BENCH_scan.json # output path
//
// The tool times two passes over the same generated corpus — a
// sequential scan (workers=1) and a parallel scan — and reports both as
// transactions/second, plus the steady-state heap allocations per
// transaction of the scratch-reusing hot path. On a single-core host the
// parallel figure tracks the sequential one (there is no parallelism to
// exploit); the gain appears with GOMAXPROCS > 1.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"runtime"
	"time"

	"leishen/internal/core"
	"leishen/internal/scan"
	"leishen/internal/simplify"
	"leishen/internal/world"
)

// Result is the BENCH_scan.json schema.
type Result struct {
	// Corpus provenance.
	Seed     int64 `json:"seed"`
	ScalePct int   `json:"scale_pct"`
	Txs      int   `json:"txs"`
	// Throughput, transactions per second.
	SeqTxPerSec float64 `json:"seq_tx_per_sec"`
	ParTxPerSec float64 `json:"par_tx_per_sec"`
	Speedup     float64 `json:"speedup"`
	// Pool shape.
	Workers    int `json:"workers"`
	GOMAXPROCS int `json:"gomaxprocs"`
	// Steady-state heap allocations per transaction with a reused
	// core.Scratch (the engine's per-worker configuration).
	AllocsPerTx float64 `json:"allocs_per_tx"`
	// Rounds is how many timed passes the medians were taken over.
	Rounds int `json:"rounds"`
}

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "benchjson:", err)
		os.Exit(1)
	}
}

func run() error {
	var (
		seed    = flag.Int64("seed", 7, "corpus seed")
		scale   = flag.Int("scale", 2, "corpus scale percent")
		workers = flag.Int("workers", 0, "parallel pass pool size (0 = GOMAXPROCS)")
		out     = flag.String("out", "BENCH_scan.json", "output path (- for stdout)")
		smoke   = flag.Bool("smoke", false, "tiny corpus, single round (CI sanity gate)")
	)
	flag.Parse()

	rounds := 5
	if *smoke {
		*scale = 1
		rounds = 1
	}
	fmt.Fprintf(os.Stderr, "generating corpus (seed %d, scale %d%%)...\n", *seed, *scale)
	c, err := world.Generate(world.Config{Seed: *seed, ScalePct: *scale})
	if err != nil {
		return err
	}
	det := core.NewDetector(c.Env.Chain, c.Env.Registry, core.Options{
		Simplify: simplify.Options{WETH: c.Env.WETH},
	})

	res := Result{
		Seed:       *seed,
		ScalePct:   *scale,
		Txs:        len(c.Receipts),
		Workers:    scan.Options{Workers: *workers}.ResolvedWorkers(len(c.Receipts)),
		GOMAXPROCS: runtime.GOMAXPROCS(0),
		Rounds:     rounds,
	}

	// Warm every cache (tagger memo, scratch growth) before timing.
	scan.Scan(det, c.Receipts, scan.Options{Workers: 1})

	res.SeqTxPerSec = timeScan(det, c, scan.Options{Workers: 1}, rounds)
	res.ParTxPerSec = timeScan(det, c, scan.Options{Workers: *workers}, rounds)
	if res.SeqTxPerSec > 0 {
		res.Speedup = res.ParTxPerSec / res.SeqTxPerSec
	}
	res.AllocsPerTx = allocsPerTx(det, c)

	raw, err := json.MarshalIndent(res, "", "  ")
	if err != nil {
		return err
	}
	raw = append(raw, '\n')
	if *out == "-" {
		_, err = os.Stdout.Write(raw)
		return err
	}
	if err := os.WriteFile(*out, raw, 0o644); err != nil {
		return err
	}
	fmt.Fprintf(os.Stderr, "seq %.0f tx/s, par %.0f tx/s (%.2fx at %d workers, GOMAXPROCS %d), %.1f allocs/tx -> %s\n",
		res.SeqTxPerSec, res.ParTxPerSec, res.Speedup, res.Workers, res.GOMAXPROCS, res.AllocsPerTx, *out)
	return nil
}

// timeScan runs `rounds` full scans and returns the best throughput —
// the round least disturbed by GC or scheduler noise.
func timeScan(det *core.Detector, c *world.Corpus, opts scan.Options, rounds int) float64 {
	best := 0.0
	for i := 0; i < rounds; i++ {
		start := time.Now()
		scan.Scan(det, c.Receipts, opts)
		if d := time.Since(start); d > 0 {
			if tps := float64(len(c.Receipts)) / d.Seconds(); tps > best {
				best = tps
			}
		}
	}
	return best
}

// allocsPerTx measures steady-state heap allocations per transaction of
// the scratch-reusing detection path, the configuration each pool worker
// runs in.
func allocsPerTx(det *core.Detector, c *world.Corpus) float64 {
	if len(c.Receipts) == 0 {
		return 0
	}
	s := core.NewScratch()
	// Warm the scratch to steady-state capacity.
	for _, r := range c.Receipts {
		det.InspectScratch(r, s)
	}
	var before, after runtime.MemStats
	runtime.GC()
	runtime.ReadMemStats(&before)
	for _, r := range c.Receipts {
		det.InspectScratch(r, s)
	}
	runtime.ReadMemStats(&after)
	return float64(after.Mallocs-before.Mallocs) / float64(len(c.Receipts))
}
