package main

import (
	"fmt"
	"os"
	"time"

	"leishen/internal/archive/torture"
)

// FaultResult is the BENCH_fault.json document: the crash-consistency
// torture matrix. Unlike the throughput passes, this one is a pure
// correctness gate — the interesting number is Violations, which must
// be zero.
type FaultResult struct {
	// Schedules are the per-workload results (append, rotate, replay,
	// checkpoint), each enumerating every crash point of its run.
	Schedules []torture.Result `json:"schedules"`
	// CrashPoints / Recoveries / Violations total across schedules.
	// Every crash point is recovered under three disk variants
	// (durable, volatile, torn).
	CrashPoints int `json:"crash_points"`
	Recoveries  int `json:"recoveries"`
	Violations  int `json:"violations"`
	// TotalMillis is the wall time of the whole matrix.
	TotalMillis float64 `json:"total_millis"`
}

// benchFault runs the full torture matrix. The caller hard-fails on a
// nonzero violation count — after writing the result, so the evidence
// behind a red run is on disk.
func benchFault() (*FaultResult, error) {
	start := time.Now()
	results, err := torture.RunAll()
	if err != nil {
		return nil, err
	}
	res := &FaultResult{Schedules: results}
	for _, r := range results {
		res.CrashPoints += r.CrashPoints
		res.Recoveries += r.Recoveries
		res.Violations += len(r.Violations)
	}
	res.TotalMillis = float64(time.Since(start).Microseconds()) / 1000
	return res, nil
}

// runFaultPass executes the torture matrix, emits the result to path,
// and returns an error when any invariant was violated.
func runFaultPass(path string) error {
	fres, err := benchFault()
	if err != nil {
		return err
	}
	if err := emitJSON(fres, path); err != nil {
		return err
	}
	if path != "-" {
		fmt.Fprintf(os.Stderr, "fault: %d crash points, %d recoveries across %d schedules, %d violation(s) in %.0f ms -> %s\n",
			fres.CrashPoints, fres.Recoveries, len(fres.Schedules), fres.Violations, fres.TotalMillis, path)
	}
	if fres.Violations > 0 {
		for _, r := range fres.Schedules {
			for _, v := range r.Violations {
				fmt.Fprintf(os.Stderr, "fault violation: %s point %d (%s, %s): %s\n",
					v.Schedule, v.CrashPoint, v.Op, v.Variant, v.Detail)
			}
		}
		return fmt.Errorf("crash-consistency torture: %d violation(s)", fres.Violations)
	}
	return nil
}
