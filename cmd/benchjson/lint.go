package main

import (
	"time"

	"leishen/internal/analysis"
)

// LintResult is the BENCH_lint.json schema: how long the static-analysis
// gate takes, split per analyzer, so a new analyzer that regresses
// `make lint` wall-time shows up in the bench artifacts.
type LintResult struct {
	// Patterns is the package set measured.
	Patterns []string `json:"patterns"`
	Packages int      `json:"packages"`
	// LoadMillis is the one-time parse/type-check cost (shared by all
	// analyzers; dominated by type-checking the stdlib from source).
	LoadMillis float64 `json:"load_ms"`
	// Analyzers carries the best-of-rounds wall time of each analyzer
	// over the loaded packages, in suite order.
	Analyzers []LintTiming `json:"analyzers"`
	// TotalMillis sums the per-analyzer figures — the serial analysis
	// cost after loading.
	TotalMillis float64 `json:"total_ms"`
	Findings    int     `json:"findings"`
	Rounds      int     `json:"rounds"`
}

// LintTiming is one analyzer's row.
type LintTiming struct {
	Name     string  `json:"name"`
	Millis   float64 `json:"millis"`
	Findings int     `json:"findings"`
}

// benchLint loads the pattern set once and times each suite analyzer
// over it, best of `rounds` passes.
func benchLint(patterns []string, rounds int) (*LintResult, error) {
	res := &LintResult{Patterns: patterns, Rounds: rounds}

	start := time.Now()
	loader, err := analysis.NewLoader(".")
	if err != nil {
		return nil, err
	}
	pkgs, err := loader.Match(patterns)
	if err != nil {
		return nil, err
	}
	res.LoadMillis = time.Since(start).Seconds() * 1e3
	res.Packages = len(pkgs)

	for _, a := range analysis.Suite() {
		var best float64
		findings := 0
		for r := 0; r < rounds; r++ {
			t0 := time.Now()
			diags := analysis.Run(pkgs, []*analysis.Analyzer{a})
			sec := time.Since(t0).Seconds()
			findings = len(diags)
			if best == 0 || sec < best {
				best = sec
			}
		}
		res.Analyzers = append(res.Analyzers, LintTiming{Name: a.Name, Millis: best * 1e3, Findings: findings})
		res.TotalMillis += best * 1e3
		res.Findings += findings
	}
	return res, nil
}
