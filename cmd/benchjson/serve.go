// The serve benchmark: end-to-end HTTP read-path throughput against a
// generated archive, old decode path vs zero-decode raw path. The
// server runs in-process (httptest over a real TCP listener) and the
// load is concurrent GET /reports pages and GET /reports/{txhash} point
// lookups — the two queries a monitoring backend answers constantly.
//
// Before any timing, the harness proves the two paths serve
// byte-identical bodies (pagination walk included) and that the raw
// path allocates less per request; a violation is an error, not a bad
// number, so `make bench-serve-smoke` doubles as a correctness gate.
package main

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"os"
	"runtime"
	"sort"
	"sync"
	"time"

	"leishen/internal/archive"
	"leishen/internal/serve"
	"leishen/internal/types"
)

// ServeResult is the BENCH_serve.json schema.
type ServeResult struct {
	// Workload shape: an archive of Records synthetic reports served
	// in-process; list requests page ListLimit reports, point requests
	// fetch one report by hash.
	Records      int `json:"records"`
	PayloadBytes int `json:"payload_bytes"`
	ListLimit    int `json:"list_limit"`
	Concurrency  int `json:"concurrency"`
	GOMAXPROCS   int `json:"gomaxprocs"`
	Rounds       int `json:"rounds"`
	// Decode is the legacy path (archive.Select into Record structs,
	// fresh json.Encoder per request); Raw is the zero-decode path
	// (stored bytes into a pooled buffer). Bodies are asserted
	// byte-identical before timing.
	Decode ServePathResult `json:"decode"`
	Raw    ServePathResult `json:"raw"`
	// QPS ratios, raw over decode.
	ListQPSSpeedup float64 `json:"list_qps_speedup"`
	GetQPSSpeedup  float64 `json:"get_qps_speedup"`
}

// ServePathResult groups one path's figures per endpoint.
type ServePathResult struct {
	List ServeFigures `json:"reports_list"`
	Get  ServeFigures `json:"reports_get"`
}

// ServeFigures is one endpoint × path measurement.
type ServeFigures struct {
	Requests     int     `json:"requests"`
	QPS          float64 `json:"qps"`
	P50Micros    float64 `json:"p50_us"`
	P99Micros    float64 `json:"p99_us"`
	AllocsPerReq float64 `json:"allocs_per_req"`
	BodyBytes    int     `json:"body_bytes"`
}

// benchServe builds the archive corpus, verifies raw/decoded parity,
// then measures both paths.
func benchServe(smoke bool, rounds int) (*ServeResult, error) {
	res := &ServeResult{
		Records:     100_000,
		ListLimit:   1000,
		Concurrency: 4,
		GOMAXPROCS:  runtime.GOMAXPROCS(0),
		Rounds:      rounds,
	}
	listReqs, getReqs := 400, 4000
	if smoke {
		res.Records = 2_000
		res.ListLimit = 100
		listReqs, getReqs = 40, 400
	}
	if rounds > 3 {
		res.Rounds = 3
	}

	// Reuse the archive bench's corpus generator: same synthetic report
	// payload, same two-records-per-block cadence, group-commit ingest.
	shape := &ArchiveResult{Records: res.Records, CheckpointEvery: 512, SyncEvery: 8, SegmentBytes: 8 << 20}
	payload := benchReportPayload()
	res.PayloadBytes = len(payload)
	dir, err := os.MkdirTemp("", "leishen-bench-serve-")
	if err != nil {
		return nil, err
	}
	defer os.RemoveAll(dir)
	if _, _, err := populate(dir, shape, payload, true); err != nil {
		return nil, err
	}
	arc, err := archive.Open(dir, archive.Options{})
	if err != nil {
		return nil, err
	}
	defer arc.Close()

	rawH := serveHandler(arc, false)
	decH := serveHandler(arc, true)

	listURLs := benchListURLs(res)
	getURLs := benchGetURLs(res)
	if err := assertSameBodies(rawH, decH, res); err != nil {
		return nil, err
	}

	// Allocation profile, handler-level (recorder, serial): the decode
	// path must not beat the raw path — that would mean the zero-decode
	// plumbing regressed into copying.
	res.Raw.List.AllocsPerReq = allocsPerRequest(rawH, listURLs)
	res.Decode.List.AllocsPerReq = allocsPerRequest(decH, listURLs)
	res.Raw.Get.AllocsPerReq = allocsPerRequest(rawH, getURLs)
	res.Decode.Get.AllocsPerReq = allocsPerRequest(decH, getURLs)
	if res.Raw.List.AllocsPerReq >= res.Decode.List.AllocsPerReq {
		return nil, fmt.Errorf("raw /reports path allocates %.1f/req, decode path %.1f/req — raw must allocate less",
			res.Raw.List.AllocsPerReq, res.Decode.List.AllocsPerReq)
	}

	// Timed load over real HTTP, best round kept per endpoint × path.
	for round := 0; round < res.Rounds; round++ {
		if err := loadRound(rawH, listURLs, listReqs, res.Concurrency, &res.Raw.List); err != nil {
			return nil, err
		}
		if err := loadRound(decH, listURLs, listReqs, res.Concurrency, &res.Decode.List); err != nil {
			return nil, err
		}
		if err := loadRound(rawH, getURLs, getReqs, res.Concurrency, &res.Raw.Get); err != nil {
			return nil, err
		}
		if err := loadRound(decH, getURLs, getReqs, res.Concurrency, &res.Decode.Get); err != nil {
			return nil, err
		}
	}
	if res.Decode.List.QPS > 0 {
		res.ListQPSSpeedup = res.Raw.List.QPS / res.Decode.List.QPS
	}
	if res.Decode.Get.QPS > 0 {
		res.GetQPSSpeedup = res.Raw.Get.QPS / res.Decode.Get.QPS
	}
	return res, nil
}

// benchReportPayload is the representative mid-size detection report
// the archive bench also uses.
func benchReportPayload() []byte {
	return []byte(`{"txHash":"0x0000000000000000000000000000000000000000000000000000000000000000",` +
		`"block":0,"success":true,"isFlashLoanTx":true,"isAttack":false,` +
		`"loans":[{"provider":"Uniswap","token":"0x00","amount":"40000000000000"}],` +
		`"matches":[],"trades":12,"transfers":31,"elapsedMicros":184}`)
}

// serveHandler wraps arc in a Server on the chosen read path. The
// /reports endpoints never touch the chain or detector, so none are
// attached.
func serveHandler(arc *archive.Archive, decode bool) http.Handler {
	s := serve.New(nil, nil)
	s.DecodeServing = decode
	s.SetArchive(arc)
	return s.Handler()
}

// benchTxHash mirrors populate's hash scheme, so point lookups can be
// generated without reading the archive.
func benchTxHash(i int) types.Hash {
	return types.HashFromData([]byte{byte(i), byte(i >> 8), byte(i >> 16), byte(i >> 24)})
}

// benchListURLs spreads page queries across the block range (two
// records per block in the generated corpus).
func benchListURLs(res *ServeResult) []string {
	const n = 16
	urls := make([]string, 0, n)
	maxBlock := res.Records / 2
	for i := 0; i < n; i++ {
		from := 1 + i*maxBlock/n
		urls = append(urls, fmt.Sprintf("/reports?limit=%d&from=%d", res.ListLimit, from))
	}
	return urls
}

// benchGetURLs spreads point lookups over the whole corpus — far more
// hashes than the record cache holds, so the figures include real frame
// reads, not just cache hits.
func benchGetURLs(res *ServeResult) []string {
	const n = 512
	urls := make([]string, 0, n)
	for i := 0; i < n; i++ {
		urls = append(urls, "/reports/"+benchTxHash(i*res.Records/n).String())
	}
	return urls
}

// assertSameBodies proves the raw and decode paths serve byte-identical
// bodies: every bench URL, a full pagination walk, an empty page and
// the error shapes.
func assertSameBodies(rawH, decH http.Handler, res *ServeResult) error {
	urls := append(benchListURLs(res), benchGetURLs(res)...)
	urls = append(urls,
		"/reports?from=999999999",                       // empty page
		"/reports/"+types.Hash{}.String(),               // miss -> 404
		fmt.Sprintf("/reports?limit=%d", res.ListLimit), // first page
	)
	for _, u := range urls {
		if err := compareBodies(rawH, decH, u); err != nil {
			return err
		}
	}
	// Pagination walk: follow nextAfter on the raw path, replaying every
	// cursor against the decode path.
	next := fmt.Sprintf("/reports?verdict=flashloan&limit=%d", res.ListLimit)
	for pages := 0; next != "" && pages < 8; pages++ {
		body, err := compareAndReturn(rawH, decH, next)
		if err != nil {
			return err
		}
		next = nextPageURL(body, res.ListLimit)
	}
	return nil
}

func compareBodies(rawH, decH http.Handler, url string) error {
	_, err := compareAndReturn(rawH, decH, url)
	return err
}

func compareAndReturn(rawH, decH http.Handler, url string) ([]byte, error) {
	rawRec := httptest.NewRecorder()
	rawH.ServeHTTP(rawRec, httptest.NewRequest("GET", url, nil))
	decRec := httptest.NewRecorder()
	decH.ServeHTTP(decRec, httptest.NewRequest("GET", url, nil))
	if rawRec.Code != decRec.Code {
		return nil, fmt.Errorf("GET %s: raw status %d, decode status %d", url, rawRec.Code, decRec.Code)
	}
	rawBody, decBody := rawRec.Body.Bytes(), decRec.Body.Bytes()
	if !bytes.Equal(rawBody, decBody) {
		return nil, fmt.Errorf("GET %s: raw and decode bodies differ (%d vs %d bytes)", url, len(rawBody), len(decBody))
	}
	return rawBody, nil
}

// nextPageURL extracts the nextAfter cursor from a /reports body,
// returning "" on the last page.
func nextPageURL(body []byte, limit int) string {
	var envelope struct {
		More      bool   `json:"more"`
		NextAfter string `json:"nextAfter"`
	}
	if err := json.Unmarshal(body, &envelope); err != nil || !envelope.More {
		return ""
	}
	return fmt.Sprintf("/reports?verdict=flashloan&limit=%d&after=%s", limit, envelope.NextAfter)
}

// discardResponseWriter is a reusable ResponseWriter that swallows the
// body, so allocsPerRequest counts the handler's allocations, not a
// fresh recorder's buffer growth per request.
type discardResponseWriter struct{ h http.Header }

func (d *discardResponseWriter) Header() http.Header         { return d.h }
func (d *discardResponseWriter) Write(p []byte) (int, error) { return len(p), nil }
func (d *discardResponseWriter) WriteHeader(int)             {}

// allocsPerRequest measures steady-state heap allocations per request,
// driving the handler directly (no network, requests pre-built, body
// discarded) so the figure isolates the handler + encoding path.
func allocsPerRequest(h http.Handler, urls []string) float64 {
	const n = 64
	reqs := make([]*http.Request, len(urls))
	for i, u := range urls {
		reqs[i] = httptest.NewRequest("GET", u, nil)
	}
	w := &discardResponseWriter{h: make(http.Header, 4)}
	for i := 0; i < 8; i++ {
		h.ServeHTTP(w, reqs[i%len(reqs)])
	}
	var before, after runtime.MemStats
	runtime.GC()
	runtime.ReadMemStats(&before)
	for i := 0; i < n; i++ {
		h.ServeHTTP(w, reqs[i%len(reqs)])
	}
	runtime.ReadMemStats(&after)
	return float64(after.Mallocs-before.Mallocs) / float64(n)
}

// loadRound drives total requests at the given concurrency over a real
// HTTP listener and folds the round's QPS and latency percentiles into
// fig, keeping the best round's figures.
func loadRound(h http.Handler, urls []string, total, concurrency int, fig *ServeFigures) error {
	srv := httptest.NewServer(h)
	defer srv.Close()
	client := srv.Client()

	perWorker := total / concurrency
	lats := make([][]time.Duration, concurrency)
	errs := make([]error, concurrency)
	var bodyBytes int
	var wg sync.WaitGroup
	start := time.Now()
	for w := 0; w < concurrency; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			mine := make([]time.Duration, 0, perWorker)
			for i := 0; i < perWorker; i++ {
				u := srv.URL + urls[(w*perWorker+i)%len(urls)]
				t0 := time.Now()
				resp, err := client.Get(u)
				if err != nil {
					errs[w] = err
					return
				}
				n, err := io.Copy(io.Discard, resp.Body)
				resp.Body.Close()
				if err != nil {
					errs[w] = err
					return
				}
				if resp.StatusCode != http.StatusOK {
					errs[w] = fmt.Errorf("GET %s: status %d", u, resp.StatusCode)
					return
				}
				if w == 0 && i == 0 {
					bodyBytes = int(n)
				}
				mine = append(mine, time.Since(t0))
			}
			lats[w] = mine
		}(w)
	}
	wg.Wait()
	wall := time.Since(start).Seconds()
	for _, err := range errs {
		if err != nil {
			return err
		}
	}

	var all []time.Duration
	for _, l := range lats {
		all = append(all, l...)
	}
	sort.Slice(all, func(i, j int) bool { return all[i] < all[j] })
	qps := float64(len(all)) / wall
	if qps > fig.QPS {
		fig.Requests = len(all)
		fig.QPS = qps
		fig.P50Micros = float64(all[len(all)/2].Microseconds())
		fig.P99Micros = float64(all[len(all)*99/100].Microseconds())
		fig.BodyBytes = bodyBytes
	}
	return nil
}
