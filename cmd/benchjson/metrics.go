// The metrics pass: the overhead proof for the telemetry subsystem.
//
// It times the same corpus scan bare and instrumented in back-to-back
// pairs and takes the median pair ratio as the overhead (noise strikes
// both arms of a pair alike), and measures steady-state allocations
// per transaction through scan.Scan for both.
// The pass HARD-FAILS (non-zero exit, which fails `make check` through
// bench-metrics-smoke) when instrumentation costs more than
// maxOverheadPct of throughput or allocates on the per-transaction
// path. BENCH_metrics.json is the committed record of the proof.
package main

import (
	"fmt"
	"os"
	"runtime"
	"sort"

	"leishen/internal/core"
	"leishen/internal/metrics"
	"leishen/internal/scan"
	"leishen/internal/simplify"
	"leishen/internal/world"
)

// maxOverheadPct is the acceptance ceiling: the instrumented scan must
// stay within this fraction of bare throughput.
const maxOverheadPct = 3.0

// maxExtraAllocsPerTx tolerates measurement jitter (a GC or timer tick
// landing mid-pass) without letting a real per-transaction allocation
// through: any true leak costs >= 1 alloc/tx.
const maxExtraAllocsPerTx = 0.05

// pairPasses is how many GC-drained passes each arm of a pair runs
// (the arm's time is the best of them), so a one-off stall on a single
// pass cannot masquerade as instrumentation cost.
const pairPasses = 3

// MetricsResult is the BENCH_metrics.json schema.
type MetricsResult struct {
	// Corpus provenance.
	Seed     int64 `json:"seed"`
	ScalePct int   `json:"scale_pct"`
	Txs      int   `json:"txs"`
	// Throughput of the sequential scan path, transactions per second,
	// bare vs. with a full scan.Metrics bundle attached. Interleaved
	// best-of-Rounds; OverheadPct is how much the instrumented arm
	// trails (floored at 0 — noise can make it "win").
	BareTxPerSec  float64 `json:"bare_tx_per_sec"`
	InstrTxPerSec float64 `json:"instr_tx_per_sec"`
	OverheadPct   float64 `json:"overhead_pct"`
	// Steady-state heap allocations per transaction through scan.Scan,
	// bare vs. instrumented. Extra is the difference — the telemetry
	// write path must not allocate, so this must sit at ~0.
	BareAllocsPerTx  float64 `json:"bare_allocs_per_tx"`
	InstrAllocsPerTx float64 `json:"instr_allocs_per_tx"`
	ExtraAllocsPerTx float64 `json:"extra_allocs_per_tx"`
	// Exposition shape after the instrumented scans: one scrape's size
	// and family count.
	ExpositionBytes    int `json:"exposition_bytes"`
	ExpositionFamilies int `json:"exposition_families"`
	// The gate this run was judged against.
	MaxOverheadPct      float64 `json:"max_overhead_pct"`
	MaxExtraAllocsPerTx float64 `json:"max_extra_allocs_per_tx"`
	GOMAXPROCS          int     `json:"gomaxprocs"`
	Rounds              int     `json:"rounds"`
}

// benchMetrics measures bare vs. instrumented scan cost and enforces
// the overhead gate. A smoke run uses the same gate on a smaller
// corpus — the proof is cheap enough to pay on every `make check`.
func benchMetrics(seed int64, scale, rounds int) (*MetricsResult, error) {
	// A scan pass over the smoke corpus is tens of milliseconds, so
	// extra rounds are cheap — and best-of-N needs enough N that BOTH
	// arms hit a quiet window on a noisy single-core host. Fewer rounds
	// would make the 3% gate a coin flip on scheduler jitter.
	if rounds < 7 {
		rounds = 7
	}
	fmt.Fprintf(os.Stderr, "metrics: generating corpus (seed %d, scale %d%%)...\n", seed, scale)
	c, err := world.Generate(world.Config{Seed: seed, ScalePct: scale})
	if err != nil {
		return nil, err
	}
	det := core.NewDetector(c.Env.Chain, c.Env.Registry, core.Options{
		Simplify: simplify.Options{WETH: c.Env.WETH},
	})
	res := &MetricsResult{
		Seed:                seed,
		ScalePct:            scale,
		Txs:                 len(c.Receipts),
		MaxOverheadPct:      maxOverheadPct,
		MaxExtraAllocsPerTx: maxExtraAllocsPerTx,
		GOMAXPROCS:          runtime.GOMAXPROCS(0),
		Rounds:              rounds,
	}

	reg := metrics.NewRegistry()
	m := scan.NewMetrics(reg)
	bare := scan.Options{Workers: 1}
	instr := scan.Options{Workers: 1, Metrics: m}

	// Warm both arms (tagger memo, scratch growth, metric registration).
	scan.Scan(det, c.Receipts, bare)
	scan.Scan(det, c.Receipts, instr)

	// Paired timing. Absolute throughput on this class of host swings
	// tens of percent between moments, so comparing each arm's best (or
	// mean) across the whole run is a coin flip at a 3% threshold.
	// Adjacent runs, though, share the same noise regime — so each
	// round times both arms back to back (alternating which goes first)
	// and records the instrumented/bare ratio of that pair; the median
	// pair ratio is the overhead estimate. Each arm is the best of
	// pairPasses GC-drained passes (see timeScan) rather than a single
	// pass: with a near-allocation-free hot path a stray stall — a
	// scheduler preemption, a background collection — lands on one pass
	// whole, and a single-pass arm would hand that stall to whichever
	// side drew it, skewing the ratio by tens of percent. Best-of
	// throughput is still reported per arm as the headline figure.
	var ratios []float64
	pair := func(instrFirst bool) {
		var bareTps, instrTps float64
		order := []scan.Options{bare, instr}
		if instrFirst {
			order[0], order[1] = instr, bare
		}
		for _, opts := range order {
			tps := timeScan(det, c, opts, pairPasses)
			if opts.Metrics != nil {
				instrTps = tps
				if tps > res.InstrTxPerSec {
					res.InstrTxPerSec = tps
				}
			} else {
				bareTps = tps
				if tps > res.BareTxPerSec {
					res.BareTxPerSec = tps
				}
			}
		}
		if bareTps > 0 {
			ratios = append(ratios, instrTps/bareTps)
		}
	}
	recompute := func() {
		res.OverheadPct = (1 - medianOf(ratios)) * 100
		if res.OverheadPct < 0 {
			res.OverheadPct = 0
		}
	}
	for i := 0; i < rounds; i++ {
		pair(i%2 == 1)
	}
	recompute()
	// Converge before judging: while the gate would fail, run more
	// pairs (bounded). Jitter that lands in a few pairs washes out of
	// the median with more samples, while a real >3% cost persists no
	// matter how many rounds run.
	for extra := 0; res.OverheadPct > maxOverheadPct && extra < 10; extra++ {
		res.Rounds++
		pair(extra%2 == 0)
		recompute()
	}

	res.BareAllocsPerTx = allocsPerTxScan(det, c, bare)
	res.InstrAllocsPerTx = allocsPerTxScan(det, c, instr)
	res.ExtraAllocsPerTx = res.InstrAllocsPerTx - res.BareAllocsPerTx

	text := reg.AppendText(nil)
	res.ExpositionBytes = len(text)
	res.ExpositionFamilies = countFamilies(text)

	if res.OverheadPct > maxOverheadPct {
		return res, fmt.Errorf("metrics gate: instrumentation costs %.2f%% of scan throughput (bare %.0f tx/s, instrumented %.0f), over the %.1f%% budget",
			res.OverheadPct, res.BareTxPerSec, res.InstrTxPerSec, maxOverheadPct)
	}
	if res.ExtraAllocsPerTx > maxExtraAllocsPerTx {
		return res, fmt.Errorf("metrics gate: instrumentation allocates %.3f per tx (bare %.3f, instrumented %.3f) — the telemetry write path must be allocation-free",
			res.ExtraAllocsPerTx, res.BareAllocsPerTx, res.InstrAllocsPerTx)
	}
	return res, nil
}

// allocsPerTxScan measures steady-state heap allocations per
// transaction of a full scan.Scan pass under opts — the same code path
// for both arms, so the difference isolates the instrumentation.
func allocsPerTxScan(det *core.Detector, c *world.Corpus, opts scan.Options) float64 {
	if len(c.Receipts) == 0 {
		return 0
	}
	scan.Scan(det, c.Receipts, opts) // warm
	var before, after runtime.MemStats
	runtime.GC()
	runtime.ReadMemStats(&before)
	scan.Scan(det, c.Receipts, opts)
	runtime.ReadMemStats(&after)
	return float64(after.Mallocs-before.Mallocs) / float64(len(c.Receipts))
}

// medianOf returns the median of xs (0 when empty). xs is sorted in
// place.
func medianOf(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	sort.Float64s(xs)
	mid := len(xs) / 2
	if len(xs)%2 == 1 {
		return xs[mid]
	}
	return (xs[mid-1] + xs[mid]) / 2
}

// countFamilies counts metric families in an exposition document by its
// TYPE headers.
func countFamilies(text []byte) int {
	n := 0
	for i := 0; i+6 <= len(text); i++ {
		if (i == 0 || text[i-1] == '\n') && string(text[i:i+6]) == "# TYPE" {
			n++
		}
	}
	return n
}
