// Command leishen is the detector CLI:
//
//	leishen -scenario bZx-1           # reproduce a known attack and inspect it
//	leishen -list                     # list the 22 reproducible scenarios
//	leishen -scan -scale 2 -seed 7    # generate a wild corpus and scan it
//	leishen -scan -workers 8          # scan on a worker pool (0 = GOMAXPROCS)
//	leishen -scan -heuristic          # scan with the yield-aggregator heuristic
//	leishen -scan -verbose            # print a detailed report per detection
//	leishen -scan -json               # emit JSON report lines
//	leishen -serve :8080 -scale 2     # HTTP monitor over a generated corpus
//	leishen -follow -archive DIR      # follow the chain into a durable archive
//	leishen -serve :8080 -archive DIR # serve /reports queries from the archive
//
// Scanning runs on the internal/scan engine: receipts are sharded across
// -workers goroutines and verdicts stream out in input order as they
// resolve, so the output is byte-identical for any worker count.
//
// Follow mode screens every block through the detector and appends the
// verdicts to a crash-safe archive in -archive DIR, checkpointing per
// block; rerunning with the same directory resumes from the stored
// checkpoint instead of rescanning.
package main

import (
	"context"
	"encoding/json"
	"errors"
	"flag"
	"fmt"
	"net/http"
	"net/http/pprof"
	"os"
	"os/signal"
	"syscall"
	"time"

	"leishen/internal/archive"
	"leishen/internal/attacks"
	"leishen/internal/buildinfo"
	"leishen/internal/core"
	"leishen/internal/follower"
	"leishen/internal/metrics"
	"leishen/internal/scan"
	"leishen/internal/serve"
	"leishen/internal/simplify"
	"leishen/internal/world"
)

// shutdownTimeout bounds how long -serve waits for in-flight requests
// after SIGINT/SIGTERM before the listener is torn down anyway.
const shutdownTimeout = 10 * time.Second

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "leishen:", err)
		os.Exit(1)
	}
}

func run() error {
	var (
		list      = flag.Bool("list", false, "list reproducible attack scenarios")
		scenario  = flag.String("scenario", "", "reproduce and inspect a known attack by name")
		scanFlag  = flag.Bool("scan", false, "generate a wild corpus and scan every flash loan transaction")
		scale     = flag.Int("scale", 2, "corpus scale percent for -scan")
		seed      = flag.Int64("seed", 7, "corpus seed for -scan")
		workers   = flag.Int("workers", 0, "scan worker pool size (0 = GOMAXPROCS)")
		heuristic = flag.Bool("heuristic", false, "enable the yield-aggregator heuristic (§VI-C)")
		verbose   = flag.Bool("verbose", false, "print full reports for detections")
		jsonOut   = flag.Bool("json", false, "emit one JSON report per detection")
		serveAddr = flag.String("serve", "", "serve detection over HTTP on this address")
		follow    = flag.Bool("follow", false, "follow the chain head and archive every verdict")
		arcDir    = flag.String("archive", "", "durable report archive directory (for -follow and -serve)")
		version   = flag.Bool("version", false, "print the build version and exit")
		debugAddr = flag.String("debug-addr", "", "serve /metrics and /debug/pprof on this side address (-serve and -follow; empty = off)")

		// HTTP listener limits for -serve: without them one slow client
		// can hold a connection (and its goroutine) forever.
		readTimeout    = flag.Duration("read-timeout", serve.DefaultReadTimeout, "max duration to read one HTTP request (-serve)")
		writeTimeout   = flag.Duration("write-timeout", serve.DefaultWriteTimeout, "max duration to write one HTTP response (-serve)")
		idleTimeout    = flag.Duration("idle-timeout", serve.DefaultIdleTimeout, "max keep-alive idle time per connection (-serve)")
		maxHeaderBytes = flag.Int("max-header-bytes", serve.DefaultMaxHeaderBytes, "max HTTP request header bytes (-serve)")
	)
	flag.Parse()

	switch {
	case *version:
		fmt.Printf("leishen %s (%s)\n", buildinfo.Version, buildinfo.GoVersion())
		return nil
	case *list:
		for _, sc := range attacks.All() {
			fmt.Println(sc.Describe())
		}
		return nil
	case *scenario != "":
		return runScenario(*scenario, *verbose)
	case *follow:
		if *arcDir == "" {
			return fmt.Errorf("-follow needs -archive DIR to store verdicts in")
		}
		return runFollow(*arcDir, *debugAddr, *seed, *scale, *heuristic, *workers)
	case *serveAddr != "":
		httpCfg := serve.HTTPConfig{
			ReadTimeout:    *readTimeout,
			WriteTimeout:   *writeTimeout,
			IdleTimeout:    *idleTimeout,
			MaxHeaderBytes: *maxHeaderBytes,
		}
		return runServe(*serveAddr, *arcDir, *debugAddr, *seed, *scale, *heuristic, *workers, httpCfg)
	case *scanFlag:
		return runScan(*seed, *scale, *workers, *heuristic, *verbose, *jsonOut)
	default:
		flag.Usage()
		return nil
	}
}

// telemetry wires the process-wide registry for the daemon modes:
// build identity plus the scan and follower bundles. The archive and
// HTTP layers attach their own series where they are constructed.
func telemetry() (*metrics.Registry, *scan.Metrics, *follower.Metrics) {
	reg := metrics.Default()
	buildinfo.Register(reg)
	return reg, scan.NewMetrics(reg), follower.NewMetrics(reg)
}

// startDebugServer serves reg's /metrics plus net/http/pprof on its own
// listener — opt-in via -debug-addr, and deliberately a separate mux so
// profiling endpoints never ride on the public address. The returned
// shutdown func is best-effort.
func startDebugServer(addr string, reg *metrics.Registry) func() {
	mux := http.NewServeMux()
	mux.Handle("GET /metrics", reg.Handler())
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	srv := &http.Server{Addr: addr, Handler: mux, ReadHeaderTimeout: 15 * time.Second}
	go func() {
		if err := srv.ListenAndServe(); err != nil && !errors.Is(err, http.ErrServerClosed) {
			fmt.Fprintln(os.Stderr, "leishen: debug listener:", err)
		}
	}()
	fmt.Printf("debug listener on %s (GET /metrics, /debug/pprof)\n", addr)
	return func() {
		ctx, cancel := context.WithTimeout(context.Background(), time.Second)
		defer cancel()
		//lint:allow errflow best-effort teardown of the side listener on exit
		_ = srv.Shutdown(ctx)
	}
}

// corpusDetector generates the deterministic wild corpus and builds its
// detector — the shared setup of scan, serve and follow modes.
func corpusDetector(seed int64, scale int, heuristic bool) (*world.Corpus, *core.Detector, error) {
	fmt.Printf("generating corpus (seed %d, scale %d%%)...\n", seed, scale)
	c, err := world.Generate(world.Config{Seed: seed, ScalePct: scale})
	if err != nil {
		return nil, nil, err
	}
	opts := core.Options{Simplify: simplify.Options{WETH: c.Env.WETH}}
	if heuristic {
		opts.YieldAggregatorHeuristic = true
		opts.YieldAggregatorApps = world.AggregatorApps
	}
	return c, core.NewDetector(c.Env.Chain, c.Env.Registry, opts), nil
}

// runFollow screens the generated chain block by block into a durable
// archive, then reports where the checkpoint landed. A rerun against the
// same directory resumes from that checkpoint: already-archived blocks
// are not rescanned.
//
// SIGINT/SIGTERM interrupts the catch-up between blocks: the follower
// is closed (draining the write queue through its final fsync) and the
// archive sealed (sidecar written), so a rerun resumes from exactly
// where the interrupt landed.
func runFollow(dir, debugAddr string, seed int64, scale int, heuristic bool, workers int) error {
	ctx, stop := signal.NotifyContext(context.Background(), syscall.SIGINT, syscall.SIGTERM)
	defer stop()

	c, det, err := corpusDetector(seed, scale, heuristic)
	if err != nil {
		return err
	}
	reg, sm, fm := telemetry()
	if debugAddr != "" {
		defer startDebugServer(debugAddr, reg)()
	}
	arc, err := archive.Open(dir, archive.Options{})
	if err != nil {
		return err
	}
	arc.RegisterMetrics(reg)
	if cp, ok := arc.Checkpoint(); ok {
		fmt.Printf("resuming from checkpoint block %d (%d records archived)\n", cp.Block, arc.Count())
	}
	fol, err := follower.New(follower.ChainSource(c.Env.Chain), det, arc, follower.Options{
		Scan:    scan.Options{Workers: workers, Metrics: sm},
		Metrics: fm,
	})
	if err != nil {
		arc.Close()
		return err
	}
	// Step-by-step catch-up with a signal check between blocks: one
	// block is the interruption granularity.
	var stepErr error
	for ctx.Err() == nil {
		processed, err := fol.Step()
		if err != nil {
			stepErr = err
			break
		}
		if !processed {
			break
		}
	}
	interrupted := ctx.Err() != nil && stepErr == nil

	closeErr := fol.Close() // drains the queue through the final fsync
	st := fol.Stats()       // after the drain, so Checkpoint is final
	records, segments := arc.Count(), arc.Segments()
	arcErr := arc.Close() // seals the tail sidecar
	for _, err := range []error{stepErr, closeErr, arcErr} {
		if err != nil {
			return err
		}
	}
	if interrupted {
		fmt.Printf("interrupted at block %d; archive closed cleanly, rerun to resume\n", st.Checkpoint)
		return nil
	}
	fmt.Printf("followed to block %d: %d flash loan transactions inspected, %d flagged\n",
		st.Checkpoint, st.Summary.Inspected, st.Summary.Attacks)
	fmt.Printf("archive %s: %d records in %d segment(s)\n", dir, records, segments)
	return nil
}

// runServe generates a corpus and serves detection reports over HTTP.
// With -archive DIR it first follows the chain into the archive and
// additionally serves the stored verdicts (/reports, /checkpoint). The
// listener runs with read/write/idle timeouts and a header cap, so a
// stalled client cannot pin a connection indefinitely.
//
// SIGINT/SIGTERM triggers a graceful exit: the listener stops accepting
// and drains in-flight requests (bounded by shutdownTimeout), then the
// follower's write queue drains through its final fsync, then the
// archive closes — writing the tail sidecar so the next open is
// index-loaded end to end.
func runServe(addr, dir, debugAddr string, seed int64, scale int, heuristic bool, workers int, httpCfg serve.HTTPConfig) error {
	ctx, stop := signal.NotifyContext(context.Background(), syscall.SIGINT, syscall.SIGTERM)
	defer stop()

	c, det, err := corpusDetector(seed, scale, heuristic)
	if err != nil {
		return err
	}
	reg, sm, fm := telemetry()
	if debugAddr != "" {
		defer startDebugServer(debugAddr, reg)()
	}
	srv := serve.New(c.Env.Chain, det)
	srv.ScanOpts = scan.Options{Workers: workers, Metrics: sm}
	srv.SetMetrics(serve.NewMetrics(reg))

	// Teardown in dependency order — HTTP first, then follower, then
	// archive — run explicitly on both the error and the signal path.
	var arc *archive.Archive
	var fol *follower.Follower
	closeAll := func() error {
		var first error
		if fol != nil {
			if err := fol.Close(); err != nil && first == nil {
				first = err
			}
		}
		if arc != nil {
			if err := arc.Close(); err != nil && first == nil {
				first = err
			}
		}
		return first
	}
	if dir != "" {
		if arc, err = archive.Open(dir, archive.Options{}); err != nil {
			return err
		}
		arc.RegisterMetrics(reg)
		fol, err = follower.New(follower.ChainSource(c.Env.Chain), det, arc, follower.Options{
			Scan:    scan.Options{Workers: workers, Metrics: sm},
			Metrics: fm,
		})
		if err != nil {
			//lint:allow errflow the follower construction error is the one to report
			_ = closeAll()
			return err
		}
		if err := fol.CatchUp(); err != nil {
			//lint:allow errflow the catch-up error is the one to report
			_ = closeAll()
			return err
		}
		srv.SetArchive(arc)
		srv.SetFollower(fol)
		fmt.Printf("archive %s: %d records, checkpoint block %d\n", dir, arc.Count(), fol.Stats().Checkpoint)
	}

	httpSrv := srv.NewHTTPServer(addr, httpCfg)
	errCh := make(chan error, 1)
	go func() { errCh <- httpSrv.ListenAndServe() }()
	fmt.Printf("serving detection on %s (GET /healthz, /stats, /tx/{hash}, /block/{n}, /reports, /checkpoint, /metrics; POST /batch)\n", addr)

	select {
	case err := <-errCh:
		//lint:allow errflow the listener error is the one to report
		_ = closeAll()
		return err
	case <-ctx.Done():
	}
	fmt.Println("shutting down: draining requests, flushing archive...")
	shutdownCtx, cancel := context.WithTimeout(context.Background(), shutdownTimeout)
	defer cancel()
	shutdownErr := httpSrv.Shutdown(shutdownCtx)
	if err := <-errCh; err != nil && !errors.Is(err, http.ErrServerClosed) && shutdownErr == nil {
		shutdownErr = err
	}
	if err := closeAll(); err != nil && shutdownErr == nil {
		shutdownErr = err
	}
	if shutdownErr == nil {
		fmt.Println("shutdown complete")
	}
	return shutdownErr
}

func runScenario(name string, verbose bool) error {
	sc, ok := attacks.ByName(name)
	if !ok {
		return fmt.Errorf("unknown scenario %q (try -list)", name)
	}
	res, err := sc.Run()
	if err != nil {
		return err
	}
	det := core.NewDetector(res.Env.Chain, res.Env.Registry, core.Options{
		Simplify: simplify.Options{WETH: res.Env.WETH},
	})
	rep := det.Inspect(res.Receipt)
	fmt.Printf("%s — profit %s\n", sc.Describe(), res.ProfitToken.Format(res.Profit))
	if verbose {
		fmt.Println(rep.Detail())
	} else {
		fmt.Println(rep.Summary())
	}
	return nil
}

// runScan scans the corpus on the worker pool, streaming each verdict as
// soon as it (and every verdict before it) has resolved — detections
// print while the tail of the corpus is still being inspected, in the
// exact order a sequential scan would print them.
func runScan(seed int64, scale, workers int, heuristic, verbose, jsonOut bool) error {
	c, det, err := corpusDetector(seed, scale, heuristic)
	if err != nil {
		return err
	}

	sum, err := scan.Each(det, c.Receipts, scan.Options{Workers: workers}, func(_ int, rep *core.Report) error {
		if !rep.IsAttack {
			return nil
		}
		switch {
		case jsonOut:
			line, err := json.Marshal(rep)
			if err != nil {
				return err
			}
			fmt.Println(string(line))
		case verbose:
			fmt.Println(rep.Detail())
		default:
			fmt.Println(rep.Summary())
		}
		return nil
	})
	if err != nil {
		return err
	}
	fmt.Printf("\nscanned %d flash loan transactions: %d flagged", sum.Inspected, sum.Attacks)
	if heuristic {
		fmt.Printf(", %d suppressed by the yield-aggregator heuristic", sum.Suppressed)
	}
	fmt.Println()
	return nil
}
