// Command leishen is the detector CLI:
//
//	leishen -scenario bZx-1           # reproduce a known attack and inspect it
//	leishen -list                     # list the 22 reproducible scenarios
//	leishen -scan -scale 2 -seed 7    # generate a wild corpus and scan it
//	leishen -scan -workers 8          # scan on a worker pool (0 = GOMAXPROCS)
//	leishen -scan -heuristic          # scan with the yield-aggregator heuristic
//	leishen -scan -verbose            # print a detailed report per detection
//	leishen -scan -json               # emit JSON report lines
//	leishen -serve :8080 -scale 2     # HTTP monitor over a generated corpus
//	leishen -follow -archive DIR      # follow the chain into a durable archive
//	leishen -serve :8080 -archive DIR # serve /reports queries from the archive
//
// Scanning runs on the internal/scan engine: receipts are sharded across
// -workers goroutines and verdicts stream out in input order as they
// resolve, so the output is byte-identical for any worker count.
//
// Follow mode screens every block through the detector and appends the
// verdicts to a crash-safe archive in -archive DIR, checkpointing per
// block; rerunning with the same directory resumes from the stored
// checkpoint instead of rescanning.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"

	"leishen/internal/archive"
	"leishen/internal/attacks"
	"leishen/internal/core"
	"leishen/internal/follower"
	"leishen/internal/scan"
	"leishen/internal/serve"
	"leishen/internal/simplify"
	"leishen/internal/world"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "leishen:", err)
		os.Exit(1)
	}
}

func run() error {
	var (
		list      = flag.Bool("list", false, "list reproducible attack scenarios")
		scenario  = flag.String("scenario", "", "reproduce and inspect a known attack by name")
		scanFlag  = flag.Bool("scan", false, "generate a wild corpus and scan every flash loan transaction")
		scale     = flag.Int("scale", 2, "corpus scale percent for -scan")
		seed      = flag.Int64("seed", 7, "corpus seed for -scan")
		workers   = flag.Int("workers", 0, "scan worker pool size (0 = GOMAXPROCS)")
		heuristic = flag.Bool("heuristic", false, "enable the yield-aggregator heuristic (§VI-C)")
		verbose   = flag.Bool("verbose", false, "print full reports for detections")
		jsonOut   = flag.Bool("json", false, "emit one JSON report per detection")
		serveAddr = flag.String("serve", "", "serve detection over HTTP on this address")
		follow    = flag.Bool("follow", false, "follow the chain head and archive every verdict")
		arcDir    = flag.String("archive", "", "durable report archive directory (for -follow and -serve)")

		// HTTP listener limits for -serve: without them one slow client
		// can hold a connection (and its goroutine) forever.
		readTimeout    = flag.Duration("read-timeout", serve.DefaultReadTimeout, "max duration to read one HTTP request (-serve)")
		writeTimeout   = flag.Duration("write-timeout", serve.DefaultWriteTimeout, "max duration to write one HTTP response (-serve)")
		idleTimeout    = flag.Duration("idle-timeout", serve.DefaultIdleTimeout, "max keep-alive idle time per connection (-serve)")
		maxHeaderBytes = flag.Int("max-header-bytes", serve.DefaultMaxHeaderBytes, "max HTTP request header bytes (-serve)")
	)
	flag.Parse()

	switch {
	case *list:
		for _, sc := range attacks.All() {
			fmt.Println(sc.Describe())
		}
		return nil
	case *scenario != "":
		return runScenario(*scenario, *verbose)
	case *follow:
		if *arcDir == "" {
			return fmt.Errorf("-follow needs -archive DIR to store verdicts in")
		}
		return runFollow(*arcDir, *seed, *scale, *heuristic, *workers)
	case *serveAddr != "":
		httpCfg := serve.HTTPConfig{
			ReadTimeout:    *readTimeout,
			WriteTimeout:   *writeTimeout,
			IdleTimeout:    *idleTimeout,
			MaxHeaderBytes: *maxHeaderBytes,
		}
		return runServe(*serveAddr, *arcDir, *seed, *scale, *heuristic, *workers, httpCfg)
	case *scanFlag:
		return runScan(*seed, *scale, *workers, *heuristic, *verbose, *jsonOut)
	default:
		flag.Usage()
		return nil
	}
}

// corpusDetector generates the deterministic wild corpus and builds its
// detector — the shared setup of scan, serve and follow modes.
func corpusDetector(seed int64, scale int, heuristic bool) (*world.Corpus, *core.Detector, error) {
	fmt.Printf("generating corpus (seed %d, scale %d%%)...\n", seed, scale)
	c, err := world.Generate(world.Config{Seed: seed, ScalePct: scale})
	if err != nil {
		return nil, nil, err
	}
	opts := core.Options{Simplify: simplify.Options{WETH: c.Env.WETH}}
	if heuristic {
		opts.YieldAggregatorHeuristic = true
		opts.YieldAggregatorApps = world.AggregatorApps
	}
	return c, core.NewDetector(c.Env.Chain, c.Env.Registry, opts), nil
}

// runFollow screens the generated chain block by block into a durable
// archive, then reports where the checkpoint landed. A rerun against the
// same directory resumes from that checkpoint: already-archived blocks
// are not rescanned.
func runFollow(dir string, seed int64, scale int, heuristic bool, workers int) error {
	c, det, err := corpusDetector(seed, scale, heuristic)
	if err != nil {
		return err
	}
	arc, err := archive.Open(dir, archive.Options{})
	if err != nil {
		return err
	}
	if cp, ok := arc.Checkpoint(); ok {
		fmt.Printf("resuming from checkpoint block %d (%d records archived)\n", cp.Block, arc.Count())
	}
	fol, err := follower.New(c.Env.Chain, det, arc, follower.Options{
		Scan: scan.Options{Workers: workers},
	})
	if err != nil {
		arc.Close()
		return err
	}
	if err := fol.CatchUp(); err != nil {
		fol.Close()
		arc.Close()
		return err
	}
	st := fol.Stats()
	fmt.Printf("followed to block %d: %d flash loan transactions inspected, %d flagged\n",
		st.Checkpoint, st.Summary.Inspected, st.Summary.Attacks)
	fmt.Printf("archive %s: %d records in %d segment(s)\n", dir, arc.Count(), arc.Segments())
	if err := fol.Close(); err != nil {
		arc.Close()
		return err
	}
	return arc.Close()
}

// runServe generates a corpus and serves detection reports over HTTP.
// With -archive DIR it first follows the chain into the archive and
// additionally serves the stored verdicts (/reports, /checkpoint). The
// listener runs with read/write/idle timeouts and a header cap, so a
// stalled client cannot pin a connection indefinitely.
func runServe(addr, dir string, seed int64, scale int, heuristic bool, workers int, httpCfg serve.HTTPConfig) error {
	c, det, err := corpusDetector(seed, scale, heuristic)
	if err != nil {
		return err
	}
	srv := serve.New(c.Env.Chain, det)
	srv.ScanOpts = scan.Options{Workers: workers}
	if dir != "" {
		arc, err := archive.Open(dir, archive.Options{})
		if err != nil {
			return err
		}
		defer arc.Close()
		fol, err := follower.New(c.Env.Chain, det, arc, follower.Options{
			Scan: scan.Options{Workers: workers},
		})
		if err != nil {
			return err
		}
		defer fol.Close()
		if err := fol.CatchUp(); err != nil {
			return err
		}
		srv.SetArchive(arc)
		srv.SetFollower(fol)
		fmt.Printf("archive %s: %d records, checkpoint block %d\n", dir, arc.Count(), fol.Stats().Checkpoint)
	}
	fmt.Printf("serving detection on %s (GET /healthz, /stats, /tx/{hash}, /block/{n}, /reports, /checkpoint; POST /batch)\n", addr)
	return srv.NewHTTPServer(addr, httpCfg).ListenAndServe()
}

func runScenario(name string, verbose bool) error {
	sc, ok := attacks.ByName(name)
	if !ok {
		return fmt.Errorf("unknown scenario %q (try -list)", name)
	}
	res, err := sc.Run()
	if err != nil {
		return err
	}
	det := core.NewDetector(res.Env.Chain, res.Env.Registry, core.Options{
		Simplify: simplify.Options{WETH: res.Env.WETH},
	})
	rep := det.Inspect(res.Receipt)
	fmt.Printf("%s — profit %s\n", sc.Describe(), res.ProfitToken.Format(res.Profit))
	if verbose {
		fmt.Println(rep.Detail())
	} else {
		fmt.Println(rep.Summary())
	}
	return nil
}

// runScan scans the corpus on the worker pool, streaming each verdict as
// soon as it (and every verdict before it) has resolved — detections
// print while the tail of the corpus is still being inspected, in the
// exact order a sequential scan would print them.
func runScan(seed int64, scale, workers int, heuristic, verbose, jsonOut bool) error {
	c, det, err := corpusDetector(seed, scale, heuristic)
	if err != nil {
		return err
	}

	sum, err := scan.Each(det, c.Receipts, scan.Options{Workers: workers}, func(_ int, rep *core.Report) error {
		if !rep.IsAttack {
			return nil
		}
		switch {
		case jsonOut:
			line, err := json.Marshal(rep)
			if err != nil {
				return err
			}
			fmt.Println(string(line))
		case verbose:
			fmt.Println(rep.Detail())
		default:
			fmt.Println(rep.Summary())
		}
		return nil
	})
	if err != nil {
		return err
	}
	fmt.Printf("\nscanned %d flash loan transactions: %d flagged", sum.Inspected, sum.Attacks)
	if heuristic {
		fmt.Printf(", %d suppressed by the yield-aggregator heuristic", sum.Suppressed)
	}
	fmt.Println()
	return nil
}
