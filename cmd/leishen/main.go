// Command leishen is the detector CLI:
//
//	leishen -scenario bZx-1           # reproduce a known attack and inspect it
//	leishen -list                     # list the 22 reproducible scenarios
//	leishen -scan -scale 2 -seed 7    # generate a wild corpus and scan it
//	leishen -scan -heuristic          # scan with the yield-aggregator heuristic
//	leishen -scan -verbose            # print a detailed report per detection
//	leishen -scan -json               # emit JSON report lines
//	leishen -serve :8080 -scale 2     # HTTP monitor over a generated corpus
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"net/http"
	"os"

	"leishen/internal/attacks"
	"leishen/internal/core"
	"leishen/internal/serve"
	"leishen/internal/simplify"
	"leishen/internal/world"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "leishen:", err)
		os.Exit(1)
	}
}

func run() error {
	var (
		list      = flag.Bool("list", false, "list reproducible attack scenarios")
		scenario  = flag.String("scenario", "", "reproduce and inspect a known attack by name")
		scan      = flag.Bool("scan", false, "generate a wild corpus and scan every flash loan transaction")
		scale     = flag.Int("scale", 2, "corpus scale percent for -scan")
		seed      = flag.Int64("seed", 7, "corpus seed for -scan")
		heuristic = flag.Bool("heuristic", false, "enable the yield-aggregator heuristic (§VI-C)")
		verbose   = flag.Bool("verbose", false, "print full reports for detections")
		jsonOut   = flag.Bool("json", false, "emit one JSON report per detection")
		serveAddr = flag.String("serve", "", "serve detection over HTTP on this address")
	)
	flag.Parse()

	switch {
	case *list:
		for _, sc := range attacks.All() {
			fmt.Println(sc.Describe())
		}
		return nil
	case *scenario != "":
		return runScenario(*scenario, *verbose)
	case *serveAddr != "":
		return runServe(*serveAddr, *seed, *scale, *heuristic)
	case *scan:
		return runScan(*seed, *scale, *heuristic, *verbose, *jsonOut)
	default:
		flag.Usage()
		return nil
	}
}

// runServe generates a corpus and serves detection reports over HTTP.
func runServe(addr string, seed int64, scale int, heuristic bool) error {
	fmt.Printf("generating corpus (seed %d, scale %d%%)...\n", seed, scale)
	c, err := world.Generate(world.Config{Seed: seed, ScalePct: scale})
	if err != nil {
		return err
	}
	opts := core.Options{Simplify: simplify.Options{WETH: c.Env.WETH}}
	if heuristic {
		opts.YieldAggregatorHeuristic = true
		opts.YieldAggregatorApps = world.AggregatorApps
	}
	det := core.NewDetector(c.Env.Chain, c.Env.Registry, opts)
	srv := serve.New(c.Env.Chain, det)
	fmt.Printf("serving detection on %s (GET /healthz, /stats, /tx/{hash}, /block/{n})\n", addr)
	return http.ListenAndServe(addr, srv.Handler())
}

func runScenario(name string, verbose bool) error {
	sc, ok := attacks.ByName(name)
	if !ok {
		return fmt.Errorf("unknown scenario %q (try -list)", name)
	}
	res, err := sc.Run()
	if err != nil {
		return err
	}
	det := core.NewDetector(res.Env.Chain, res.Env.Registry, core.Options{
		Simplify: simplify.Options{WETH: res.Env.WETH},
	})
	rep := det.Inspect(res.Receipt)
	fmt.Printf("%s — profit %s\n", sc.Describe(), res.ProfitToken.Format(res.Profit))
	if verbose {
		fmt.Println(rep.Detail())
	} else {
		fmt.Println(rep.Summary())
	}
	return nil
}

func runScan(seed int64, scale int, heuristic, verbose, jsonOut bool) error {
	fmt.Printf("generating corpus (seed %d, scale %d%%)...\n", seed, scale)
	c, err := world.Generate(world.Config{Seed: seed, ScalePct: scale})
	if err != nil {
		return err
	}
	opts := core.Options{Simplify: simplify.Options{WETH: c.Env.WETH}}
	if heuristic {
		opts.YieldAggregatorHeuristic = true
		opts.YieldAggregatorApps = world.AggregatorApps
	}
	det := core.NewDetector(c.Env.Chain, c.Env.Registry, opts)

	detected, suppressed := 0, 0
	for _, r := range c.Receipts {
		rep := det.Inspect(r)
		if rep.SuppressedByHeuristic {
			suppressed++
		}
		if !rep.IsAttack {
			continue
		}
		detected++
		switch {
		case jsonOut:
			line, err := json.Marshal(rep)
			if err != nil {
				return err
			}
			fmt.Println(string(line))
		case verbose:
			fmt.Println(rep.Detail())
		default:
			fmt.Println(rep.Summary())
		}
	}
	fmt.Printf("\nscanned %d flash loan transactions: %d flagged", len(c.Receipts), detected)
	if heuristic {
		fmt.Printf(", %d suppressed by the yield-aggregator heuristic", suppressed)
	}
	fmt.Println()
	return nil
}
